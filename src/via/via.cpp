#include "via/via.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace clicsim::via {

namespace {
constexpr std::uint8_t kFirst = 0x1;
constexpr std::uint8_t kLast = 0x2;
constexpr std::uint8_t kRdma = 0x4;
}  // namespace

// ================================ Vi ========================================

Vi::Vi(ViaProvider& provider, int id) : provider_(&provider), id_(id) {}

void Vi::connect(int remote_node, int remote_vi) {
  remote_node_ = remote_node;
  remote_vi_ = remote_vi;
}

void Vi::post_recv(std::int64_t capacity) {
  recv_descriptors_.push_back(capacity);
}

void Vi::register_region(std::int64_t capacity) {
  region_capacity_ = capacity;
}

void Vi::post_send(net::Buffer data) {
  ViaHeader h;
  h.vi_id = static_cast<std::uint16_t>(remote_vi_);
  h.src_node = static_cast<std::uint16_t>(provider_->node().id());
  provider_->user_send(*this, h, std::move(data), [this] {
    cq_.push_back(Completion{/*is_send=*/true, remote_node_, {}});
  });
}

void Vi::rdma_write(net::Buffer data, std::int64_t offset) {
  ViaHeader h;
  h.vi_id = static_cast<std::uint16_t>(remote_vi_);
  h.src_node = static_cast<std::uint16_t>(provider_->node().id());
  h.flags = kRdma;
  h.rdma_offset = static_cast<std::uint32_t>(offset);
  provider_->user_send(*this, h, std::move(data), [this] {
    cq_.push_back(Completion{/*is_send=*/true, remote_node_, {}});
  });
}

sim::Future<Completion> Vi::poll_wait() {
  sim::Future<Completion> future(provider_->node().sim());

  // Busy-poll: the CPU spins in user mode, one completion-queue check per
  // poll interval, until an entry appears. Low latency, 100% CPU — the
  // behaviour CLIC's interrupt-driven design trades against (section 3.2b).
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, future, poll]() mutable {
    auto& node = provider_->node();
    node.cpu().run(sim::CpuPriority::kUser,
                   provider_->config().poll_interval,
                   [this, future, poll]() mutable {
                     if (!cq_.empty()) {
                       auto c = std::move(cq_.front());
                       cq_.pop_front();
                       future.set(std::move(c));
                       *poll = nullptr;  // break the self-reference
                       return;
                     }
                     (*poll)();
                   });
  };
  (*poll)();
  return future;
}

void Vi::frame_in(const ViaHeader& header, net::Buffer payload) {
  if (header.flags & kRdma) {
    // The card wrote straight into the registered region.
    if (header.rdma_offset + payload.size() <= region_capacity_) {
      region_written_ =
          std::max<std::int64_t>(region_written_,
                                 header.rdma_offset + payload.size());
    }
    return;
  }

  if (header.flags & kFirst) {
    assembling_.clear();
    if (recv_descriptors_.empty()) {
      // Unreliable delivery: no posted descriptor, the message is lost.
      ++dropped_;
      assembling_active_ = false;
      return;
    }
    assembling_active_ = true;
  }
  if (!assembling_active_) return;

  assembling_.append(std::move(payload));
  if (!(header.flags & kLast)) return;

  assembling_active_ = false;
  const std::int64_t capacity = recv_descriptors_.front();
  recv_descriptors_.pop_front();
  if (assembling_.size() > capacity) {
    ++dropped_;  // descriptor too small: VIA completes in error; we drop
    assembling_.clear();
    return;
  }
  Completion c;
  c.is_send = false;
  c.src_node = header.src_node;
  c.data = assembling_.flatten();
  assembling_.clear();
  cq_.push_back(std::move(c));
}

// ============================= ViaProvider ===================================

ViaProvider::ViaProvider(os::Node& node, Config config,
                         const os::AddressMap& addresses)
    : node_(&node), config_(config), addresses_(&addresses) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->nic(i).set_rx_bypass([this](net::Frame frame) {
      packet_received(std::move(frame), /*from_isr=*/false);
    });
  }
}

Vi& ViaProvider::create_vi() {
  vis_.push_back(std::make_unique<Vi>(*this, static_cast<int>(vis_.size())));
  return *vis_.back();
}

void ViaProvider::user_send(Vi& vi, ViaHeader header, net::Buffer data,
                            std::function<void()> on_sent) {
  if (vi.remote_node_ < 0) {
    throw std::logic_error("Vi: send on an unconnected VI");
  }
  const int dst_node = vi.remote_node_;

  // User-level descriptor build + doorbell — the entire host-side cost.
  node_->cpu().run(
      sim::CpuPriority::kUser,
      config_.descriptor_build + config_.doorbell,
      [this, dst_node, header, data = std::move(data),
       on_sent = std::move(on_sent)]() mutable {
        // The card fetches the descriptor and segments the message to the
        // wire MTU in firmware; the host CPU is not involved per frame.
        node_->sim().after(config_.nic_descriptor_fetch, [this, dst_node,
                                                          header,
                                                          data = std::move(
                                                              data),
                                                          on_sent = std::move(
                                                              on_sent)]() mutable {
          const std::int64_t chunk = node_->nic(0).mtu() - kViaHeaderBytes;
          const std::int64_t total = std::max<std::int64_t>(data.size(), 1);
          const int count = static_cast<int>((total + chunk - 1) / chunk);
          auto remaining = std::make_shared<int>(count);

          std::int64_t offset = 0;
          bool first = true;
          do {
            const std::int64_t len = std::min(chunk, data.size() - offset);
            ViaHeader h = header;
            if (first) h.flags |= kFirst;
            if (offset + len >= data.size()) h.flags |= kLast;
            if (h.flags & kRdma) {
              h.rdma_offset =
                  header.rdma_offset + static_cast<std::uint32_t>(offset);
            }

            hw::Nic::TxRequest req;
            req.frame.dst = addresses_->macs_of(dst_node)[0];
            req.frame.src = node_->mac(0);
            req.frame.ethertype = kEtherTypeVia;
            req.frame.header = net::HeaderBlob::of(h, kViaHeaderBytes);
            req.frame.payload = len > 0 ? data.slice(offset, len)
                                        : net::Buffer::zeros(0);
            req.sg_fragments = 2;
            auto complete = [remaining, on_sent]() mutable {
              if (--*remaining == 0 && on_sent) on_sent();
            };
            ++tx_frames_;
            // Kernel bypass: straight to the card, no driver. A full send
            // queue surfaces as an (error) completion — unreliable service
            // means the frame is simply lost.
            if (node_->nic(0).tx_ring_full()) {
              complete();
            } else {
              req.on_descriptor_done = std::move(complete);
              node_->nic(0).post_tx(std::move(req));
            }
            offset += len;
            first = false;
          } while (offset < data.size());
        });
      });
}

void ViaProvider::packet_received(net::Frame frame, bool /*from_isr*/) {
  const auto* h = frame.header.get<ViaHeader>();
  if (h == nullptr) return;
  if (h->vi_id >= vis_.size()) return;
  // Completion-queue write by the card.
  node_->sim().after(config_.completion_write, [this, header = *h,
                                                payload = std::move(
                                                    frame.payload)]() mutable {
    vis_[header.vi_id]->frame_in(header, std::move(payload));
  });
}

}  // namespace clicsim::via
