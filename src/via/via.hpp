// VIA-like comparator (Virtual Interface Architecture, section 3.2).
//
// Modelled design points:
//  * user-level virtual interfaces (VIs) — no system call on the data
//    path: the application builds a descriptor in user memory and rings a
//    doorbell (one uncached PCI write);
//  * per-VI send and receive descriptor queues; the card DMAs directly
//    between registered user memory and the wire (true 0-copy both ways);
//  * completion by POLLING: the application burns CPU checking the
//    completion queue — low latency, 100% CPU while waiting (the trade-off
//    CLIC's interrupt-driven design argues against);
//  * unreliable delivery: a frame arriving at a VI with no posted receive
//    descriptor is dropped (reliability is the application's problem);
//  * RDMA write into a remote registered region.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/buffer.hpp"
#include "os/address.hpp"
#include "os/driver.hpp"
#include "os/node.hpp"
#include "sim/task.hpp"

namespace clicsim::via {

inline constexpr std::uint16_t kEtherTypeVia = 0x88B7;

struct Config {
  sim::SimTime descriptor_build = sim::nanoseconds(300);  // user-level
  sim::SimTime doorbell = sim::nanoseconds(400);          // uncached write
  sim::SimTime nic_descriptor_fetch = sim::microseconds(1.0);
  sim::SimTime completion_write = sim::nanoseconds(500);
  sim::SimTime poll_cost = sim::nanoseconds(250);   // one CQ check
  sim::SimTime poll_interval = sim::microseconds(1.0);
};

struct ViaHeader {
  std::uint16_t vi_id = 0;       // destination VI number
  std::uint8_t flags = 0;        // bit0 first, bit1 last, bit2 rdma
  std::uint32_t rdma_offset = 0;
  std::uint16_t src_node = 0;
};
inline constexpr std::int64_t kViaHeaderBytes = 8;

struct Completion {
  bool is_send = false;
  int src_node = -1;
  net::Buffer data;  // for receive completions
};

class ViaProvider;

// One connected virtual interface endpoint.
class Vi {
 public:
  Vi(ViaProvider& provider, int id);

  // Connects this VI to VI `remote_vi` on `remote_node` (out of band).
  void connect(int remote_node, int remote_vi);

  // Posts a receive descriptor pointing at a user buffer of `capacity`.
  void post_recv(std::int64_t capacity);

  // Posts a send of `data`; a send completion appears on the CQ when the
  // card finished reading the buffer.
  void post_send(net::Buffer data);

  // RDMA write into the remote VI's registered region at `offset`.
  void rdma_write(net::Buffer data, std::int64_t offset);

  // Registers a memory region RDMA writes land in.
  void register_region(std::int64_t capacity);

  // Polls the completion queue until an entry appears, charging poll CPU
  // per check — the VIA waiting model.
  [[nodiscard]] sim::Future<Completion> poll_wait();

  [[nodiscard]] std::size_t completions_pending() const { return cq_.size(); }
  [[nodiscard]] std::uint64_t rx_dropped_no_descriptor() const {
    return dropped_;
  }
  [[nodiscard]] std::int64_t region_bytes_written() const {
    return region_written_;
  }
  [[nodiscard]] int id() const { return id_; }

 private:
  friend class ViaProvider;

  void frame_in(const ViaHeader& header, net::Buffer payload);

  ViaProvider* provider_;
  int id_;
  int remote_node_ = -1;
  int remote_vi_ = -1;
  std::deque<std::int64_t> recv_descriptors_;
  net::BufferChain assembling_;
  bool assembling_active_ = false;
  std::deque<Completion> cq_;
  std::int64_t region_capacity_ = 0;
  std::int64_t region_written_ = 0;
  std::uint64_t dropped_ = 0;
};

class ViaProvider : public os::ProtocolHandler {
 public:
  ViaProvider(os::Node& node, Config config,
              const os::AddressMap& addresses);

  [[nodiscard]] Vi& create_vi();
  [[nodiscard]] Vi& vi(int id) { return *vis_.at(id); }

  // os::ProtocolHandler
  void packet_received(net::Frame frame, bool from_isr) override;

  [[nodiscard]] os::Node& node() { return *node_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return tx_frames_; }

 private:
  friend class Vi;

  // The user-level send path: descriptor + doorbell in user context, then
  // the card fetches the descriptor and DMAs the data (segmenting to MTU
  // in firmware — VIA hardware handled message-level descriptors).
  void user_send(Vi& vi, ViaHeader header, net::Buffer data,
                 std::function<void()> on_sent);

  os::Node* node_;
  Config config_;
  const os::AddressMap* addresses_;
  std::vector<std::unique_ptr<Vi>> vis_;
  std::uint64_t tx_frames_ = 0;
};

}  // namespace clicsim::via
