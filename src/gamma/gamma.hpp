// GAMMA-like comparator (Chiola & Ciaccio): the Genoa Active Message
// MAchine, the lightweight protocol the paper benchmarks CLIC against.
//
// Design points modelled (section 3.2 and [2,6,14,15]):
//  * lightweight system calls — reduced trap cost, no scheduler pass on
//    the way back to user mode;
//  * active ports — the receive ISR dispatches straight into a per-port
//    handler which moves data to user memory; no sk_buff, no bottom half,
//    no wake-through-scheduler;
//  * best-effort delivery on a dedicated switched LAN (GAMMA relied on the
//    network being loss-free; an optional stop-and-wait-window reliability
//    mode is provided for fault-injection tests);
//  * no multiprogramming protection and no intra-node messaging — the
//    functional trade-offs the paper holds against it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/buffer.hpp"
#include "os/address.hpp"
#include "os/driver.hpp"
#include "os/node.hpp"
#include "sim/task.hpp"

namespace clicsim::gamma {

struct Config {
  sim::SimTime tx_cost = sim::microseconds(1.0);       // driver-level send
  sim::SimTime handler_cost = sim::microseconds(1.0);  // active-port dispatch
  // GAMMA's short-message fast path (how it measured 9.5 us on the
  // GNIC-II): the CPU pushes small frames to the card by programmed I/O,
  // skipping DMA setup entirely. 0 disables.
  std::int64_t pio_threshold = 256;
  bool reliable = false;  // simple go-back-N when the LAN is lossy
  int window_packets = 32;
  sim::SimTime rto = sim::milliseconds(3.0);
  int ack_every = 8;
};

struct GammaHeader {
  std::uint8_t port = 0;
  std::uint8_t flags = 0;  // bit0: first, bit1: last, bit2: ack
  std::uint16_t src_node = 0;
  std::uint32_t seq = 0;
};
inline constexpr std::int64_t kGammaHeaderBytes = 8;

struct Message {
  int src_node = -1;
  int port = 0;
  net::Buffer data;
};

class GammaModule : public os::ProtocolHandler {
 public:
  GammaModule(os::Node& node, Config config,
              const os::AddressMap& addresses);

  // Registers an active port: `handler` runs in interrupt context when a
  // complete message has been placed in user memory.
  void register_port(int port, std::function<void(Message)> handler);

  // Convenience for sequential code: messages on `port` are queued and
  // awaited (the handler still runs at interrupt priority first).
  void open_mailbox_port(int port);
  [[nodiscard]] sim::Future<Message> recv(int port);

  // Sends via a lightweight system call; completes when the last packet's
  // DMA descriptor finished.
  [[nodiscard]] sim::Future<bool> send(int dst_node, int port,
                                       net::Buffer data);

  // os::ProtocolHandler
  void packet_received(net::Frame frame, bool from_isr) override;

  [[nodiscard]] std::uint64_t messages_sent() const { return tx_msgs_; }
  [[nodiscard]] std::uint64_t messages_received() const { return rx_msgs_; }
  [[nodiscard]] std::uint64_t dropped_no_port() const { return dropped_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] os::Node& node() { return *node_; }

 private:
  struct PortState {
    std::function<void(Message)> handler;
    net::BufferChain assembling;
    int assembling_src = -1;
    std::deque<Message> queue;                // mailbox mode
    std::deque<sim::Future<Message>> waiting;
  };

  struct PeerTx {
    std::uint32_t next_seq = 0;
    std::uint32_t base = 0;
    std::deque<net::Frame> unacked;  // reliable mode only
    std::uint64_t rto_generation = 0;
    bool rto_armed = false;
  };

  void emit(int dst_node, GammaHeader header, net::Buffer payload,
            std::function<void()> on_done);
  void deliver(PortState& port, Message message);
  void send_ack(int dst_node, std::uint32_t seq);
  void arm_rto(int dst_node);

  os::Node* node_;
  Config config_;
  const os::AddressMap* addresses_;
  std::unordered_map<int, PortState> ports_;
  std::unordered_map<int, PeerTx> peers_;
  std::unordered_map<int, std::uint32_t> rx_next_;  // reliable mode
  std::unordered_map<int, int> rx_acks_owed_;
  std::uint64_t tx_msgs_ = 0;
  std::uint64_t rx_msgs_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace clicsim::gamma
