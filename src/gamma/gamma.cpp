#include "gamma/gamma.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "os/skbuff.hpp"

namespace clicsim::gamma {

namespace {
constexpr std::uint8_t kFirst = 0x1;
constexpr std::uint8_t kLast = 0x2;
constexpr std::uint8_t kAck = 0x4;
}  // namespace

GammaModule::GammaModule(os::Node& node, Config config,
                         const os::AddressMap& addresses)
    : node_(&node), config_(config), addresses_(&addresses) {
  for (int i = 0; i < node_->nic_count(); ++i) {
    node_->driver(i).add_protocol(net::kEtherTypeGamma, this);
    // GAMMA's whole point: the protocol runs from the ISR.
    node_->driver(i).set_direct_dispatch(true);
  }
}

void GammaModule::register_port(int port,
                                std::function<void(Message)> handler) {
  ports_[port].handler = std::move(handler);
}

void GammaModule::open_mailbox_port(int port) { ports_[port]; }

sim::Future<Message> GammaModule::recv(int port) {
  sim::Future<Message> future(node_->sim());
  auto& ps = ports_[port];
  if (!ps.queue.empty()) {
    future.set(std::move(ps.queue.front()));
    ps.queue.pop_front();
  } else {
    ps.waiting.push_back(future);
  }
  return future;
}

sim::Future<bool> GammaModule::send(int dst_node, int port,
                                    net::Buffer data) {
  sim::Future<bool> result(node_->sim());
  ++tx_msgs_;

  // Lightweight system call: reduced trap, no scheduler on return.
  node_->kernel().light_syscall([this, dst_node, port, data = std::move(data),
                                 result]() mutable {
    const std::int64_t chunk = node_->nic(0).mtu() - kGammaHeaderBytes;
    const std::int64_t total = std::max<std::int64_t>(data.size(), 1);
    const int count = static_cast<int>((total + chunk - 1) / chunk);
    auto remaining = std::make_shared<int>(count);

    std::int64_t offset = 0;
    bool first = true;
    do {
      const std::int64_t len = std::min(chunk, data.size() - offset);
      GammaHeader h;
      h.port = static_cast<std::uint8_t>(port);
      h.src_node = static_cast<std::uint16_t>(node_->id());
      if (first) h.flags |= kFirst;
      if (offset + len >= data.size()) h.flags |= kLast;

      auto& peer = peers_[dst_node];
      h.seq = peer.next_seq++;

      emit(dst_node, h,
           len > 0 ? data.slice(offset, len) : net::Buffer::zeros(0),
           [remaining, result]() mutable {
             if (--*remaining == 0) result.set(true);
           });
      offset += len;
      first = false;
    } while (offset < data.size());
  });
  return result;
}

void GammaModule::emit(int dst_node, GammaHeader header, net::Buffer payload,
                       std::function<void()> on_done) {
  os::SkBuff skb;
  skb.dst = addresses_->macs_of(dst_node)[0];
  skb.src = node_->mac(0);
  skb.ethertype = net::kEtherTypeGamma;
  skb.header = net::HeaderBlob::of(header, kGammaHeaderBytes);
  skb.payload = std::move(payload);
  skb.sg_fragments = node_->nic(0).profile().scatter_gather ? 2 : 1;
  skb.references_user_memory = true;  // GAMMA sends from user pages

  if (config_.reliable && !(header.flags & kAck)) {
    peers_[dst_node].unacked.push_back(skb.to_frame());
    arm_rto(dst_node);
  }

  // Short-message fast path: programmed I/O straight into the card FIFO —
  // the CPU pays the (small) PCI transfer itself and no DMA setup occurs.
  // Only whole (single-fragment) messages qualify: a PIO'd tail fragment
  // would overtake its DMA'd predecessors and tear the message.
  const bool single_fragment =
      (header.flags & kFirst) && (header.flags & kLast);
  if (config_.pio_threshold > 0 && (single_fragment || (header.flags & kAck)) &&
      skb.payload.size() <= config_.pio_threshold) {
    net::Frame frame = skb.to_frame();
    const sim::SimTime pio = node_->pci().transaction_time(
        frame.frame_bytes(), /*efficiency=*/0.25);
    node_->pci().transfer(pio);
    node_->cpu().run(sim::CpuPriority::kKernel, config_.tx_cost + pio,
                     [this, frame = std::move(frame),
                      on_done = std::move(on_done)]() mutable {
                       node_->nic(0).post_tx_pio(std::move(frame));
                       if (on_done) on_done();
                     });
    return;
  }

  node_->cpu().run(sim::CpuPriority::kKernel, config_.tx_cost,
                   [this, skb = std::move(skb),
                    on_done = std::move(on_done)]() mutable {
                     node_->driver(0).xmit_or_queue(std::move(skb),
                                                    std::move(on_done));
                   });
}

void GammaModule::arm_rto(int dst_node) {
  auto& peer = peers_[dst_node];
  if (peer.rto_armed) return;
  peer.rto_armed = true;
  const std::uint64_t generation = ++peer.rto_generation;
  node_->kernel().add_timer(config_.rto, [this, dst_node, generation] {
    auto& p = peers_[dst_node];
    if (generation != p.rto_generation) return;
    p.rto_armed = false;
    if (p.unacked.empty()) return;
    ++retransmits_;
    const net::Frame& f = p.unacked.front();
    os::SkBuff rskb;
    rskb.dst = f.dst;
    rskb.src = f.src;
    rskb.ethertype = f.ethertype;
    rskb.header = f.header;
    rskb.payload = f.payload;
    node_->cpu().run(sim::CpuPriority::kKernel, config_.tx_cost,
                     [this, rskb = std::move(rskb)]() mutable {
                       node_->driver(0).xmit_or_queue(std::move(rskb));
                     });
    arm_rto(dst_node);  // keep retransmitting until acked
  });
}

void GammaModule::send_ack(int dst_node, std::uint32_t seq) {
  GammaHeader h;
  h.flags = kAck;
  h.src_node = static_cast<std::uint16_t>(node_->id());
  h.seq = seq;
  emit(dst_node, h, net::Buffer::zeros(0), {});
}

void GammaModule::packet_received(net::Frame frame, bool from_isr) {
  const auto prio =
      from_isr ? sim::CpuPriority::kInterrupt : sim::CpuPriority::kSoftirq;
  const auto* h = frame.header.get<GammaHeader>();
  if (h == nullptr) return;
  const int src = h->src_node;

  if (h->flags & kAck) {
    // Cumulative ack for the reliable mode.
    auto& peer = peers_[src];
    while (!peer.unacked.empty() &&
           peer.unacked.front().header.get<GammaHeader>()->seq < h->seq) {
      peer.unacked.pop_front();
      ++peer.base;
    }
    ++peer.rto_generation;
    peer.rto_armed = false;
    if (!peer.unacked.empty()) arm_rto(src);
    return;
  }

  if (config_.reliable) {
    auto& next = rx_next_[src];
    if (h->seq != next) {
      // Go-back-N: drop out-of-order, re-ack.
      send_ack(src, next);
      return;
    }
    ++next;
    if (++rx_acks_owed_[src] >= config_.ack_every || (h->flags & kLast)) {
      rx_acks_owed_[src] = 0;
      send_ack(src, next);
    }
  } else {
    // Best-effort mode still detects a torn message: a sequence gap while
    // assembling aborts the whole message (no retransmission exists).
    auto& next = rx_next_[src];
    const bool gap = h->seq != next && !(h->flags & kFirst);
    next = h->seq + 1;
    if (gap) {
      auto pit = ports_.find(h->port);
      if (pit != ports_.end()) {
        pit->second.assembling.clear();
        pit->second.assembling_src = -1;
      }
      ++dropped_;
      return;
    }
  }

  auto it = ports_.find(h->port);
  if (it == ports_.end()) {
    ++dropped_;
    return;
  }
  PortState& ps = it->second;

  // The active-port handler runs straight from the ISR: it moves the data
  // to user memory (charged at interrupt priority) and, on the last
  // fragment, invokes the user handler. No bottom half, no scheduler.
  const std::int64_t bytes = frame.payload.size();
  node_->mem().copy_pressure(bytes);
  node_->cpu().run(
      prio, config_.handler_cost + node_->cpu().copy_cost(bytes),
      [this, &ps, src, header = *h,
       payload = std::move(frame.payload)]() mutable {
        if (header.flags & kFirst) {
          ps.assembling.clear();
          ps.assembling_src = src;
        } else if (ps.assembling_src < 0) {
          return;  // tail fragments of a torn message
        }
        ps.assembling.append(std::move(payload));
        if (!(header.flags & kLast)) return;

        Message m;
        m.src_node = ps.assembling_src;
        m.port = header.port;
        m.data = ps.assembling.flatten();
        ps.assembling.clear();
        ps.assembling_src = -1;
        ++rx_msgs_;
        deliver(ps, std::move(m));
      });
}

void GammaModule::deliver(PortState& port, Message message) {
  if (port.handler) {
    port.handler(std::move(message));
    return;
  }
  if (!port.waiting.empty()) {
    auto future = std::move(port.waiting.front());
    port.waiting.pop_front();
    future.set(std::move(message));
    return;
  }
  port.queue.push_back(std::move(message));
}

}  // namespace clicsim::gamma
