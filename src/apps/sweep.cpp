#include "apps/sweep.hpp"

#include <cstdlib>
#include <cstring>

#include "apps/workloads.hpp"

namespace clicsim::apps {

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [-j N] [--shards N]\n"
               "  -j N, --jobs N   run sweep points on N worker threads\n"
               "                   (default: all cores; -j1 is the exact\n"
               "                   sequential run — output is byte-identical\n"
               "                   at any -j)\n"
               "  --shards N       shard each simulation across N PDES\n"
               "                   worker threads (default 1; output is\n"
               "                   byte-identical at any shard count)\n",
               prog);
  std::exit(code);
}

int parse_job_count(const char* prog, const char* text) {
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || n < 1 || n > 4096) usage(prog, 2);
  return static_cast<int>(n);
}

}  // namespace

SweepOptions parse_sweep_args(int argc, char** argv) {
  SweepOptions options;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      usage(prog, 0);
    } else if (std::strcmp(arg, "-j") == 0 ||
               std::strcmp(arg, "--jobs") == 0) {
      if (i + 1 >= argc) usage(prog, 2);
      options.jobs = parse_job_count(prog, argv[++i]);
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      options.jobs = parse_job_count(prog, arg + 2);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      options.jobs = parse_job_count(prog, arg + 7);
    } else if (std::strcmp(arg, "--shards") == 0) {
      if (i + 1 >= argc) usage(prog, 2);
      options.shards = parse_job_count(prog, argv[++i]);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      options.shards = parse_job_count(prog, arg + 9);
    } else {
      usage(prog, 2);
    }
  }
  return options;
}

std::vector<sim::Series> bandwidth_series_set(
    const std::vector<SeriesSpec>& specs,
    const std::vector<std::int64_t>& sizes, const SweepOptions& options) {
  SweepRunner<sim::SimTime> runner(options);
  for (const auto& spec : specs) {
    for (const auto size : sizes) {
      runner.add([&spec, size] { return spec.one_way(size); });
    }
  }
  const auto times = runner.run();

  std::vector<sim::Series> curves;
  curves.reserve(specs.size());
  std::size_t slot = 0;
  for (const auto& spec : specs) {
    sim::Series series(spec.name);
    for (const auto size : sizes) {
      series.add(static_cast<double>(size), to_mbps(size, times[slot++]));
    }
    curves.push_back(std::move(series));
  }
  return curves;
}

}  // namespace clicsim::apps
