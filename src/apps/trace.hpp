// Protocol decoding for captured frames — the "tcpdump" text renderer.
// Lives in apps because it is the only layer allowed to know every stack's
// header type (net stays protocol-agnostic).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "net/tap.hpp"
#include "os/cluster.hpp"

namespace clicsim::apps {

// One-line description of a frame: MACs, ethertype, decoded protocol
// header (CLIC, IP/TCP, IP/UDP, GAMMA, VIA, NIC-fragment) and sizes.
[[nodiscard]] std::string describe(const net::Frame& frame);

// Captures traffic arriving at selected points of a cluster and renders a
// time-ordered decoded trace.
class PacketTrace {
 public:
  // Taps frames arriving at node `node`'s NIC `nic` (i.e. its ingress).
  void tap_node_rx(os::Cluster& cluster, int node, int nic = 0);

  // Taps frames leaving node `node` (arriving at the switch side).
  void tap_node_tx(os::Cluster& cluster, int node, int nic = 0);

  // Convenience: tap every node's rx and tx.
  void tap_all(os::Cluster& cluster);

  // Time-merged decoded dump.
  void dump(std::ostream& os) const;

  [[nodiscard]] std::uint64_t frames_captured() const;
  void clear();

 private:
  struct Point {
    std::string label;
    std::unique_ptr<net::Tap> tap;
  };
  std::vector<Point> points_;
};

}  // namespace clicsim::apps
