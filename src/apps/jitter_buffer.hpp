// Receive-side frame reassembly with playout deadlines: the jitter buffer
// of the streaming workload (DESIGN.md §4j), modeled on the TReassembly
// idiom of Gen-Tau-Client (SNIPPETS.md §2).
//
// A stream is a sequence of fixed-cadence frames, each fragmented over the
// transport. The receiver registers every expected frame up front (frame
// generation times are a pure function of the stream config, so sender and
// receiver agree without exchanging metadata) and the buffer schedules one
// playout event per frame at its deadline:
//
//   * a frame whose fragments all arrived before its deadline sits in the
//     buffer (depth) until the deadline plays it — counted on_time;
//   * a frame still incomplete at its deadline is expired — counted as a
//     deadline miss, its partial reassembly state discarded;
//   * fragments arriving for an expired frame are dropped on arrival
//     (drop-late semantics) and counted, as are duplicates (fault
//     injection duplicates frames; retransmission can too).
//
// Completion latency (complete − generated) of every played frame is
// recorded in an internal HdrHistogram, mergeable across streams in
// stream-index order.
//
// The buffer lives on the receiving node's simulator/shard: on_fragment()
// must be called from that shard's context (the receive path), which keeps
// all counters single-writer under the PDES engine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace clicsim::apps {

class JitterBuffer {
 public:
  // `sig_digits` configures the latency histogram's HDR precision.
  explicit JitterBuffer(sim::Simulator& sim, int sig_digits = 3);

  // Registers frame `frame` (dense, ascending from 0) of `fragments`
  // pieces, generated at `generated`, to be played at `deadline`
  // (> generated). Schedules the playout/expiry event. Must be called
  // before the frame's first fragment arrives (normally: all frames at
  // setup, before the run).
  void expect_frame(std::uint32_t frame, int fragments, sim::SimTime generated,
                    sim::SimTime deadline);

  enum class Fragment {
    kAccepted,   // new fragment of a pending frame
    kCompleted,  // this fragment completed its frame (now buffered)
    kDuplicate,  // already had this fragment (or the whole frame)
    kLate,       // frame already expired: dropped on arrival
  };

  // A fragment of `frame` arrived at sim.now().
  Fragment on_fragment(std::uint32_t frame, std::uint32_t index);

  // --- Telemetry -----------------------------------------------------------

  [[nodiscard]] std::uint64_t frames_expected() const { return expected_; }
  [[nodiscard]] std::uint64_t frames_on_time() const { return on_time_; }
  [[nodiscard]] std::uint64_t deadline_misses() const { return misses_; }
  [[nodiscard]] std::uint64_t late_fragments() const { return late_frags_; }
  [[nodiscard]] std::uint64_t duplicate_fragments() const { return dups_; }

  // Frames whose playout deadline has not fired yet (the in-flight term of
  // the accounting identity: on_time + misses == expected - pending).
  [[nodiscard]] std::uint64_t pending_frames() const {
    return expected_ - on_time_ - misses_;
  }

  // Complete frames currently held awaiting playout, and the high-water
  // mark of that depth.
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] int max_depth() const { return max_depth_; }

  // Completion latency (ns) of every frame that played on time.
  [[nodiscard]] const sim::HdrHistogram& latency() const { return latency_; }

 private:
  enum class State : std::uint8_t { kPending, kBuffered, kPlayed, kExpired };

  struct FrameState {
    sim::SimTime generated = 0;
    int fragments = 0;
    int received = 0;
    State state = State::kPending;
    std::vector<bool> have;
  };

  void playout(std::uint32_t frame);

  sim::Simulator* sim_;
  std::vector<FrameState> frames_;
  sim::HdrHistogram latency_;
  std::uint64_t expected_ = 0;
  std::uint64_t on_time_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t late_frags_ = 0;
  std::uint64_t dups_ = 0;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace clicsim::apps
