// Parallel parameter sweeps — thin wrappers over apps::SweepRunner
// (sweep.hpp), kept for callers that map a single function over inputs.
//
// A simulation is single-threaded and deterministic, but sweep points are
// independent — each builds its own Simulator and cluster — so they can run
// on a pool of worker threads (sim::ParallelExecutor). This is the only
// concurrency in the library; everything inside one simulation stays
// sequential by design.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace clicsim::apps {

// Applies `fn` to every input, possibly concurrently; results are indexed
// like the inputs. `threads` <= 0 picks the hardware concurrency.
std::vector<sim::SimTime> parallel_map(
    const std::vector<std::int64_t>& inputs,
    const std::function<sim::SimTime(std::int64_t)>& fn, int threads = 0);

// bandwidth_series (see workloads.hpp), with the points evaluated on a
// thread pool. `fn` must be callable concurrently from several threads —
// true for every workload driver here, since each call owns its world.
[[nodiscard]] sim::Series bandwidth_series_parallel(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way,
    int threads = 0);

}  // namespace clicsim::apps
