#include "apps/report.hpp"

#include <iomanip>
#include <ostream>

namespace clicsim::apps {

void report_cluster(std::ostream& os, os::Cluster& cluster) {
  os << "cluster: " << cluster.size() << " nodes, "
     << cluster.config().nics_per_node << " NIC(s)/node, t="
     << std::fixed << std::setprecision(3)
     << sim::to_ms(cluster.node(0).sim().now()) << " ms\n";
  os << std::setw(6) << "node" << std::setw(9) << "cpu%" << std::setw(9)
     << "irq%" << std::setw(9) << "soft%" << std::setw(9) << "pci%"
     << std::setw(9) << "mem%" << std::setw(10) << "tx-frm" << std::setw(10)
     << "rx-frm" << std::setw(8) << "irqs" << std::setw(8) << "drops"
     << '\n';

  for (int i = 0; i < cluster.size(); ++i) {
    auto& n = cluster.node(i);
    const auto now = n.sim().now();
    auto pct = [now](sim::SimTime busy) {
      return now > 0 ? 100.0 * static_cast<double>(busy) /
                           static_cast<double>(now)
                     : 0.0;
    };
    std::uint64_t tx = 0;
    std::uint64_t rx = 0;
    std::uint64_t irqs = 0;
    std::uint64_t drops = 0;
    for (int j = 0; j < n.nic_count(); ++j) {
      tx += n.nic(j).tx_frames();
      rx += n.nic(j).rx_frames();
      irqs += n.nic(j).interrupts_fired();
      drops += n.nic(j).rx_ring_drops() + n.nic(j).rx_bad_fcs() +
               n.nic(j).rx_oversize_drops();
    }
    os << std::setw(6) << i << std::setw(8) << std::setprecision(1)
       << n.cpu().utilization() * 100.0 << '%' << std::setw(8)
       << pct(n.cpu().busy_time(sim::CpuPriority::kInterrupt)) << '%'
       << std::setw(8) << pct(n.cpu().busy_time(sim::CpuPriority::kSoftirq))
       << '%' << std::setw(8) << n.pci().utilization() * 100.0 << '%'
       << std::setw(8) << n.mem().utilization() * 100.0 << '%'
       << std::setw(10) << tx << std::setw(10) << rx << std::setw(8) << irqs
       << std::setw(8) << drops << '\n';
  }
  os.unsetf(std::ios::fixed);
}

void report_clic(std::ostream& os, clic::ClicModule& module) {
  os << "clic@node" << module.node().id() << ": msgs tx/rx "
     << module.messages_sent() << '/' << module.messages_received()
     << ", bytes tx/rx " << module.bytes_sent() << '/'
     << module.bytes_received() << ", intra-node "
     << module.intra_node_messages() << '\n';
  for (int peer = 0; peer < 256; ++peer) {
    const clic::Channel* ch = module.channel_to(peer);
    if (ch == nullptr) continue;
    os << "  channel -> node" << peer << ": rx_next " << ch->rx_next()
       << ", in-flight " << ch->in_flight() << ", pending "
       << ch->pending() << ", retransmits " << ch->retransmits()
       << ", dups " << ch->duplicates() << ", ooo " << ch->out_of_order()
       << ", acks " << ch->acks_sent() << ", timeouts " << ch->timeouts()
       << ", backoff " << ch->backoff_level() << ", gave-up "
       << ch->gave_up() << ", resets " << ch->resets_accepted() << '\n';
    if (module.config().adaptive) {
      // Extra line per channel, only in adaptive mode — paper-mode output
      // stays byte-identical to the fixed-clock reproduction.
      os << "    adaptive: srtt " << std::fixed << std::setprecision(1)
         << sim::to_us(ch->rtt().srtt()) << " us, rttvar "
         << sim::to_us(ch->rtt().rttvar()) << " us, rto "
         << sim::to_us(ch->current_rto()) << " us, samples "
         << ch->rtt().samples() << ", cwnd " << ch->cwnd() << ", win "
         << ch->window_min() << ".." << ch->window_max() << ", collapses "
         << ch->window_collapses() << '\n';
      os.unsetf(std::ios::fixed);
    }
  }
}

void report_adaptive(std::ostream& os, clic::ClicModule& module) {
  if (!module.config().adaptive) {
    os << "adaptive@node" << module.node().id() << ": disabled\n";
    return;
  }
  const clic::ClicModule::AdaptiveStats s = module.adaptive_stats();
  os << "adaptive@node" << module.node().id() << ": srtt-max " << std::fixed
     << std::setprecision(1) << sim::to_us(s.srtt_max) << " us, rttvar-max "
     << sim::to_us(s.rttvar_max) << " us, samples " << s.rtt_samples
     << ", win " << s.window_min << ".." << s.window_max << ", collapses "
     << s.window_collapses << '\n';
  os.unsetf(std::ios::fixed);
}

void report_faults(std::ostream& os, os::Cluster& cluster) {
  net::Switch& sw = cluster.ethernet_switch();
  os << "faults: switch tail-drops " << sw.dropped() << ", port-down "
     << sw.port_down_drops() << ", bad-fcs " << sw.bad_fcs() << '\n';
  for (int i = 0; i < cluster.size(); ++i) {
    for (int j = 0; j < cluster.config().nics_per_node; ++j) {
      net::Link& link = cluster.link(i, j);
      std::uint64_t dropped = 0;
      std::uint64_t bursts = 0;
      std::uint64_t corrupted = 0;
      std::uint64_t dups = 0;
      std::uint64_t delayed = 0;
      for (int d = 0; d < 2; ++d) {
        dropped += link.faults(d).dropped();
        bursts += link.faults(d).burst_drops();
        corrupted += link.faults(d).corrupted();
        dups += link.faults(d).duplicated();
        delayed += link.faults(d).delayed();
      }
      os << "  " << link.name() << ": dropped " << dropped << " (burst "
         << bursts << "), corrupted " << corrupted << ", duplicated "
         << dups << ", delayed " << delayed << ", carrier-drops "
         << link.carrier_drops() << ", carrier "
         << (link.carrier_up() ? "up" : "down") << ", nic-stall-drops "
         << cluster.node(i).nic(j).stall_drops() << '\n';
    }
  }
}

}  // namespace clicsim::apps
