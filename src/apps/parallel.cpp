#include "apps/parallel.hpp"

#include "apps/sweep.hpp"
#include "apps/workloads.hpp"
#include "sim/parallel_executor.hpp"

namespace clicsim::apps {

std::vector<sim::SimTime> parallel_map(
    const std::vector<std::int64_t>& inputs,
    const std::function<sim::SimTime(std::int64_t)>& fn, int threads) {
  SweepRunner<sim::SimTime> runner(SweepOptions{threads});
  for (const auto input : inputs) {
    runner.add([&fn, input] { return fn(input); });
  }
  return runner.run();
}

sim::Series bandwidth_series_parallel(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way, int threads) {
  return bandwidth_series_set({{name, one_way}}, sizes,
                              SweepOptions{threads})[0];
}

}  // namespace clicsim::apps
