#include "apps/parallel.hpp"

#include <atomic>
#include <thread>

#include "apps/workloads.hpp"

namespace clicsim::apps {

std::vector<sim::SimTime> parallel_map(
    const std::vector<std::int64_t>& inputs,
    const std::function<sim::SimTime(std::int64_t)>& fn, int threads) {
  std::vector<sim::SimTime> out(inputs.size(), 0);
  if (inputs.empty()) return out;

  unsigned n = threads > 0 ? static_cast<unsigned>(threads)
                           : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  n = std::min<unsigned>(n, static_cast<unsigned>(inputs.size()));

  if (n == 1) {
    for (std::size_t i = 0; i < inputs.size(); ++i) out[i] = fn(inputs[i]);
    return out;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= inputs.size()) return;
      out[i] = fn(inputs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return out;
}

sim::Series bandwidth_series_parallel(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way, int threads) {
  const auto times = parallel_map(sizes, one_way, threads);
  sim::Series series(name);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    series.add(static_cast<double>(sizes[i]), to_mbps(sizes[i], times[i]));
  }
  return series;
}

}  // namespace clicsim::apps
