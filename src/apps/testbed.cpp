#include "apps/testbed.hpp"

#include <utility>

namespace clicsim::apps {

ClicBed::ClicBed(os::ClusterConfig cluster_config, clic::Config clic_config)
    : cluster(sim, std::move(cluster_config)),
      addresses(os::AddressMap::for_cluster(cluster)) {
  for (int i = 0; i < cluster.size(); ++i) {
    modules.push_back(std::make_unique<clic::ClicModule>(
        cluster.node(i), clic_config, addresses));
  }
}

TcpBed::TcpBed(os::ClusterConfig cluster_config, tcpip::Config tcp_config)
    : cluster(sim, std::move(cluster_config)),
      addresses(os::AddressMap::for_cluster(cluster)) {
  for (int i = 0; i < cluster.size(); ++i) {
    ip.push_back(std::make_unique<tcpip::IpLayer>(cluster.node(i),
                                                  tcp_config, addresses));
    tcp.push_back(std::make_unique<tcpip::TcpStack>(*ip.back(), tcp_config));
    udp.push_back(std::make_unique<tcpip::UdpStack>(*ip.back(), tcp_config));
  }
}

MpiClicBed::MpiClicBed(os::ClusterConfig cluster_config,
                       clic::Config clic_config, mpi::Config mpi_config)
    : bed(std::move(cluster_config), clic_config) {
  const int n = bed.cluster.size();
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<mpi::ClicTransport>(bed.module(i), i, n));
    comms.push_back(
        std::make_unique<mpi::Communicator>(*transports.back(), mpi_config));
  }
}

MpiTcpBed::MpiTcpBed(os::ClusterConfig cluster_config,
                     tcpip::Config tcp_config, mpi::Config mpi_config)
    : bed(std::move(cluster_config), tcp_config) {
  const int n = bed.cluster.size();
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<mpi::TcpTransport>(*bed.tcp[i], i, n));
    comms.push_back(
        std::make_unique<mpi::Communicator>(*transports.back(), mpi_config));
  }
}

sim::Future<bool> MpiTcpBed::connect() {
  return mpi::connect_tcp_mesh(transports);
}

PvmBed::PvmBed(os::ClusterConfig cluster_config, tcpip::Config tcp_config,
               pvm::Config config)
    : bed(std::move(cluster_config), tcp_config), pvm_config(config) {
  const int n = bed.cluster.size();
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<mpi::TcpTransport>(*bed.tcp[i], i, n, 7600));
  }
}

sim::Future<bool> PvmBed::connect() {
  if (!tasks_built_) {
    tasks_built_ = true;
    for (auto& t : transports) {
      tasks.push_back(std::make_unique<pvm::PvmTask>(*t, pvm_config));
    }
  }
  return mpi::connect_tcp_mesh(transports);
}

GammaBed::GammaBed(os::ClusterConfig cluster_config,
                   gamma::Config gamma_config)
    : cluster(sim, std::move(cluster_config)),
      addresses(os::AddressMap::for_cluster(cluster)) {
  for (int i = 0; i < cluster.size(); ++i) {
    modules.push_back(std::make_unique<gamma::GammaModule>(
        cluster.node(i), gamma_config, addresses));
  }
}

ViaBed::ViaBed(os::ClusterConfig cluster_config, via::Config via_config)
    : cluster(sim, std::move(cluster_config)),
      addresses(os::AddressMap::for_cluster(cluster)) {
  for (int i = 0; i < cluster.size(); ++i) {
    providers.push_back(std::make_unique<via::ViaProvider>(
        cluster.node(i), via_config, addresses));
  }
}

}  // namespace clicsim::apps
