#include "apps/testbed.hpp"

#include <algorithm>
#include <utility>

namespace clicsim::apps {

namespace {

// More shards than simulation objects (nodes plus however many switches
// the topology builds — a fat-tree's spines occupy shards too) would leave
// workers idle; fewer than 1 is meaningless. Clamping (rather than
// throwing) lets callers pass nproc. For the legacy single star this is
// the old [1, nodes + 1] bound.
int clamped_shards(const os::ClusterConfig& c) {
  return std::clamp(c.shards, 1,
                    c.nodes + c.topology.switch_count(c.nodes));
}

os::ClusterConfig with_clamped_shards(os::ClusterConfig c) {
  c.shards = clamped_shards(c);
  return c;
}

}  // namespace

BedCore::BedCore(os::ClusterConfig cluster_config)
    : shards(sim, clamped_shards(cluster_config)),
      cluster(shards, with_clamped_shards(std::move(cluster_config))),
      addresses(os::AddressMap::for_cluster(cluster)) {
  // Worker shards 1..K-1 each get their own buffer pool, installed as the
  // worker thread's scope for the run; shard 0 executes on the controlling
  // thread under the bed's main pool scope. Frames crossing shards are
  // detached (net::Frame::detach), so no pooled block is ever shared.
  for (int i = 1; i < shards.shards(); ++i) {
    shard_pools.push_back(std::make_unique<net::BufferPool>());
  }
  if (shards.shards() > 1) {
    shards.set_worker_wrapper(
        [this](int shard, const std::function<void()>& body) {
          if (shard == 0) {
            body();
            return;
          }
          net::BufferPool::Scope scope(
              shard_pools[static_cast<std::size_t>(shard - 1)].get());
          body();
        });
  }
}

ClicBed::ClicBed(os::ClusterConfig cluster_config, clic::Config clic_config)
    : BedCore(std::move(cluster_config)) {
  for (int i = 0; i < cluster.size(); ++i) {
    modules.push_back(std::make_unique<clic::ClicModule>(
        cluster.node(i), clic_config, addresses));
  }
}

TcpBed::TcpBed(os::ClusterConfig cluster_config, tcpip::Config tcp_config)
    : BedCore(std::move(cluster_config)) {
  for (int i = 0; i < cluster.size(); ++i) {
    ip.push_back(std::make_unique<tcpip::IpLayer>(cluster.node(i),
                                                  tcp_config, addresses));
    tcp.push_back(std::make_unique<tcpip::TcpStack>(*ip.back(), tcp_config));
    udp.push_back(std::make_unique<tcpip::UdpStack>(*ip.back(), tcp_config));
  }
}

MpiClicBed::MpiClicBed(os::ClusterConfig cluster_config,
                       clic::Config clic_config, mpi::Config mpi_config,
                       bool nic_collectives)
    // Honours cluster_config.shards: every cross-rank byte moves through a
    // CLIC send/broadcast, i.e. over links that detach frames at shard
    // boundaries, and each rank's coroutines run on its own node's
    // simulator — so the PDES thread-confinement argument holds. Drive
    // rank r's coroutines from sim_of(r), as with any sharded bed. (The
    // same holds with NIC offload: engines only exchange frames.)
    : bed(std::move(cluster_config), clic_config) {
  const int n = bed.cluster.size();
  std::vector<net::MacAddr> macs;
  if (nic_collectives) {
    macs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) macs.push_back(os::Cluster::mac_of(i, 0));
  }
  for (int i = 0; i < n; ++i) {
    if (nic_collectives) {
      engines.push_back(std::make_unique<hw::NicCollectiveEngine>(
          bed.cluster.node(i).nic(0), i, macs));
      mpi_config.nic_collective = engines.back().get();
    }
    transports.push_back(
        std::make_unique<mpi::ClicTransport>(bed.module(i), i, n));
    comms.push_back(
        std::make_unique<mpi::Communicator>(*transports.back(), mpi_config));
  }
}

MpiTcpBed::MpiTcpBed(os::ClusterConfig cluster_config,
                     tcpip::Config tcp_config, mpi::Config mpi_config)
    // TCP-transported beds pin shards = 1: TcpTransport delivers envelopes
    // by writing into the peer transport's queues directly (no link hop to
    // detach at), so rank state is not thread-confined.
    : bed((cluster_config.shards = 1, std::move(cluster_config)),
          tcp_config) {
  const int n = bed.cluster.size();
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<mpi::TcpTransport>(*bed.tcp[i], i, n));
    comms.push_back(
        std::make_unique<mpi::Communicator>(*transports.back(), mpi_config));
  }
}

sim::Future<bool> MpiTcpBed::connect() {
  return mpi::connect_tcp_mesh(transports);
}

PvmBed::PvmBed(os::ClusterConfig cluster_config, tcpip::Config tcp_config,
               pvm::Config config)
    : bed((cluster_config.shards = 1, std::move(cluster_config)), tcp_config),
      pvm_config(config) {
  const int n = bed.cluster.size();
  for (int i = 0; i < n; ++i) {
    transports.push_back(
        std::make_unique<mpi::TcpTransport>(*bed.tcp[i], i, n, 7600));
  }
}

sim::Future<bool> PvmBed::connect() {
  if (!tasks_built_) {
    tasks_built_ = true;
    for (auto& t : transports) {
      tasks.push_back(std::make_unique<pvm::PvmTask>(*t, pvm_config));
    }
  }
  return mpi::connect_tcp_mesh(transports);
}

GammaBed::GammaBed(os::ClusterConfig cluster_config,
                   gamma::Config gamma_config)
    : BedCore(std::move(cluster_config)) {
  for (int i = 0; i < cluster.size(); ++i) {
    modules.push_back(std::make_unique<gamma::GammaModule>(
        cluster.node(i), gamma_config, addresses));
  }
}

ViaBed::ViaBed(os::ClusterConfig cluster_config, via::Config via_config)
    : BedCore(std::move(cluster_config)) {
  for (int i = 0; i < cluster.size(); ++i) {
    providers.push_back(std::make_unique<via::ViaProvider>(
        cluster.node(i), via_config, addresses));
  }
}

}  // namespace clicsim::apps
