// Chaos-soak harness: randomized cluster-wide fault campaigns against a
// full protocol stack, with a machine-checkable liveness contract.
//
// A campaign wires every flappable element of a testbed cluster (link
// carriers, switch ports, NIC DMA engines) into a sim::FaultPlan, layers
// probabilistic misbehaviour (Gilbert–Elliott burst loss, duplication,
// bounded-jitter reordering) onto the links, and drives a mesh of
// confirmed sends through the storm. All faults heal by `fault_window`;
// by `deadline` the run must satisfy bounded-failure liveness:
//
//   * every confirmed send resolved — acknowledged, or failed cleanly
//     after the channel's retry budget (never hung);
//   * a send that reported ok was delivered exactly once, and one that
//     reported failure was delivered at most once (the two-generals
//     caveat: an ack can be black-holed after the data arrived);
//   * the simulator quiesced (no runaway retransmission loops);
//   * no orphan timers remain on any node's kernel wheel.
//
// One integer seed replays an entire campaign byte-identically, at any
// sweep parallelism, for both the CLIC and TCP stacks.
#pragma once

#include <cstdint>
#include <string>

#include "os/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "sim/time.hpp"

namespace clicsim::apps {

enum class ChaosStack { kClic, kTcp };

struct ChaosOptions {
  ChaosStack stack = ChaosStack::kClic;
  std::uint64_t seed = 1;
  int nodes = 4;
  // Intra-scenario PDES shards (1 = single-threaded). The campaign's
  // summary() is bit-identical at any shard count.
  int shards = 1;
  // Fabric shape (default: the legacy single star). Multi-tier specs add
  // every inter-switch trunk and every switch's ports to the target set,
  // so a campaign can kill a spine uplink mid-storm.
  os::TopologySpec topology;
  int messages = 24;          // confirmed sends, round-robin over node pairs
  std::int64_t bytes = 8000;  // payload per message

  // Faults are injected in [0, fault_window) and all heal at its close;
  // liveness is then enforced at `deadline`.
  sim::SimTime fault_window = sim::seconds(3.0);
  sim::SimTime deadline = sim::seconds(30.0);

  int outages = 6;              // random carrier/port/stall outages
  bool gilbert_elliott = true;  // two-state bursty loss on every link
  bool duplicates = true;       // frame duplication
  bool reorder = true;          // bounded-jitter delay (reordering)
  // One seed-chosen node loses its carrier for longer than the CLIC retry
  // budget: sends in flight to/from it must fail *cleanly* (bounded
  // failure), and the peer must resynchronize when it comes back.
  bool hard_partition = true;

  // Run the CLIC stack in adaptive reliability mode (DESIGN.md §4k):
  // measured-RTT RTO ladder + congestion window. The liveness contract is
  // unchanged — the estimator must not break bounded failure. Ignored for
  // the TCP stack.
  bool adaptive = false;
};

struct ChaosReport {
  ChaosStack stack = ChaosStack::kClic;
  std::uint64_t seed = 0;
  int messages = 0;
  int resolved = 0;   // send futures that completed either way
  int succeeded = 0;  // resolved with ok
  int failed = 0;     // resolved with a clean failure
  int delivered = 0;  // messages verified intact at a receiver
  int invariant_violations = 0;  // exactly-once / at-most-once breaches
  bool quiesced = false;         // event queue drained before the deadline
  bool timers_clean = false;     // every node's timer wheel is empty

  // Fault-side telemetry (what the campaign actually did).
  std::uint64_t outages_scheduled = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t link_burst_drops = 0;
  std::uint64_t link_duplicates = 0;
  std::uint64_t link_delayed = 0;
  std::uint64_t carrier_drops = 0;
  std::uint64_t switch_port_drops = 0;
  std::uint64_t switch_tail_drops = 0;
  std::uint64_t nic_stall_drops = 0;

  // Protocol-side degradation (CLIC channels; zero for TCP runs).
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t resets_accepted = 0;

  // Adaptive-mode telemetry (populated — and appended to summary() — only
  // when ChaosOptions::adaptive ran a CLIC campaign, so non-adaptive
  // summaries stay byte-identical to the fixed-clock harness).
  bool adaptive = false;
  std::uint64_t rtt_samples = 0;
  std::uint64_t window_collapses = 0;
  sim::SimTime srtt_max = 0;
  sim::SimTime rttvar_max = 0;
  int window_min = 0;
  int window_max = 0;

  sim::SimTime finished_at = 0;  // sim clock when the run went idle

  // The liveness contract above, as one predicate.
  [[nodiscard]] bool liveness_ok() const;

  // Deterministic one-line digest (identical at any -j; used by tests to
  // compare parallel and serial executions).
  [[nodiscard]] std::string summary() const;
};

// Registers every flappable element of `cluster` as a FaultPlan target:
// one per link carrier (node links and inter-switch trunks), one per port
// on every switch in the fabric, one per NIC (DMA stall). Target names and
// order depend only on the cluster's shape — never on its shard count — so
// a seeded campaign replays identically at any parallelism.
void register_cluster_targets(sim::FaultPlan& plan, os::Cluster& cluster);

// Runs one full campaign in a private simulator and returns its report.
ChaosReport run_chaos_campaign(const ChaosOptions& options);

}  // namespace clicsim::apps
