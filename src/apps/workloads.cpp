#include "apps/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/chaos.hpp"
#include "sim/fault_plan.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace clicsim::apps {

double to_mbps(std::int64_t size, sim::SimTime one_way) {
  if (one_way <= 0) return 0.0;
  return static_cast<double>(size) * 8e3 / static_cast<double>(one_way);
}

namespace {

// Shared ping-pong skeleton: `leg(dst)` sends one message to the peer,
// `take()` blocks for one inbound message. The initiator measures reps
// round trips after one warm-up.
struct PingPongClock {
  sim::SimTime t0 = 0;
  sim::SimTime t1 = 0;
  int reps = 5;

  [[nodiscard]] sim::SimTime one_way() const {
    return (t1 - t0) / (2 * reps);
  }
};

}  // namespace

// --- CLIC -----------------------------------------------------------------------

namespace {
sim::Task clic_pp_initiator(sim::Simulator& sim, clic::Port& port,
                            std::int64_t size, PingPongClock& clock) {
  (void)co_await port.send(1, 1, net::Buffer::zeros(size));
  (void)co_await port.recv();
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await port.send(1, 1, net::Buffer::zeros(size));
    (void)co_await port.recv();
  }
  clock.t1 = sim.now();
}

sim::Task clic_pp_responder(clic::Port& port, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await port.recv();
    (void)co_await port.send(0, 1, net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime clic_one_way(const Scenario& s, std::int64_t size) {
  ClicBed bed(s.cluster, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  clic_pp_initiator(bed.sim_of(0), a, size, clock);
  clic_pp_responder(b, size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- TCP ------------------------------------------------------------------------

namespace {
sim::Task tcp_pp_initiator(sim::Simulator& sim, tcpip::TcpStack& stack,
                           std::int64_t size, PingPongClock& clock) {
  auto& sock = stack.create_socket();
  (void)co_await sock.connect(1, 5000);
  (void)co_await sock.send(net::Buffer::zeros(size));
  (void)co_await sock.recv_exact(size);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await sock.send(net::Buffer::zeros(size));
    (void)co_await sock.recv_exact(size);
  }
  clock.t1 = sim.now();
}

sim::Task tcp_pp_responder(tcpip::TcpStack& stack, std::int64_t size,
                           int reps) {
  tcpip::TcpSocket* sock = co_await stack.accept(5000);
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await sock->recv_exact(size);
    (void)co_await sock->send(net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime tcp_one_way(const Scenario& s, std::int64_t size) {
  TcpBed bed(s.cluster, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  bed.tcp[1]->listen(5000);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  tcp_pp_initiator(bed.sim_of(0), *bed.tcp[0], std::max<std::int64_t>(size, 1),
                   clock);
  tcp_pp_responder(*bed.tcp[1], std::max<std::int64_t>(size, 1), clock.reps);
  bed.run();
  return clock.one_way();
}

// --- MPI ------------------------------------------------------------------------

namespace {
sim::Task mpi_pp_initiator(sim::Simulator& sim, mpi::Communicator& comm,
                           std::int64_t size, PingPongClock& clock) {
  (void)co_await comm.send(1, 7, net::Buffer::zeros(size));
  (void)co_await comm.recv(1, 7);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await comm.send(1, 7, net::Buffer::zeros(size));
    (void)co_await comm.recv(1, 7);
  }
  clock.t1 = sim.now();
}

sim::Task mpi_pp_responder(mpi::Communicator& comm, std::int64_t size,
                           int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await comm.recv(0, 7);
    (void)co_await comm.send(0, 7, net::Buffer::zeros(size));
  }
}

sim::Task mpi_tcp_pp_all(MpiTcpBed& bed, std::int64_t size,
                         PingPongClock& clock) {
  const bool ok = co_await bed.connect();
  if (!ok) co_return;
  mpi_pp_initiator(bed.sim(), bed.comm(0), size, clock);
  mpi_pp_responder(bed.comm(1), size, clock.reps);
}
}  // namespace

sim::SimTime mpi_clic_one_way(const Scenario& s, std::int64_t size) {
  MpiClicBed bed(s.cluster, s.clic, s.mpi);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  mpi_pp_initiator(bed.sim(), bed.comm(0), size, clock);
  mpi_pp_responder(bed.comm(1), size, clock.reps);
  // Group-wide run: the CLIC bed shards, and sim().run() alone would
  // silently simulate only shard 0's slice (rank 1 never answers).
  bed.run();
  return clock.one_way();
}

sim::SimTime mpi_tcp_one_way(const Scenario& s, std::int64_t size) {
  MpiTcpBed bed(s.cluster, s.tcp, s.mpi);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  mpi_tcp_pp_all(bed, size, clock);
  bed.sim().run();
  return clock.one_way();
}

// --- PVM ------------------------------------------------------------------------

namespace {
sim::Task pvm_pp_initiator(sim::Simulator& sim, pvm::PvmTask& task,
                           std::int64_t size, PingPongClock& clock) {
  for (int i = 0; i < clock.reps + 1; ++i) {
    task.initsend();
    (void)co_await task.pack(net::Buffer::zeros(size));
    (void)co_await task.send(1, 7);
    pvm::PvmMessage m = co_await task.recv(1, 7);
    (void)co_await task.unpack(m, size);
    if (i == 0) clock.t0 = sim.now();
  }
  clock.t1 = sim.now();
}

sim::Task pvm_pp_responder(pvm::PvmTask& task, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    pvm::PvmMessage m = co_await task.recv(0, 7);
    (void)co_await task.unpack(m, size);
    task.initsend();
    (void)co_await task.pack(net::Buffer::zeros(size));
    (void)co_await task.send(0, 7);
  }
}

sim::Task pvm_pp_all(PvmBed& bed, std::int64_t size, PingPongClock& clock) {
  const bool ok = co_await bed.connect();
  if (!ok) co_return;
  pvm_pp_initiator(bed.sim(), bed.task(0), size, clock);
  pvm_pp_responder(bed.task(1), size, clock.reps);
}
}  // namespace

sim::SimTime pvm_one_way(const Scenario& s, std::int64_t size) {
  PvmBed bed(s.cluster, s.tcp, s.pvm);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  pvm_pp_all(bed, size, clock);
  bed.sim().run();
  return clock.one_way();
}

// --- GAMMA ----------------------------------------------------------------------

namespace {
sim::Task gamma_pp_initiator(sim::Simulator& sim, gamma::GammaModule& mod,
                             std::int64_t size, PingPongClock& clock) {
  (void)co_await mod.send(1, 1, net::Buffer::zeros(size));
  (void)co_await mod.recv(1);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await mod.send(1, 1, net::Buffer::zeros(size));
    (void)co_await mod.recv(1);
  }
  clock.t1 = sim.now();
}

sim::Task gamma_pp_responder(gamma::GammaModule& mod, std::int64_t size,
                             int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await mod.recv(1);
    (void)co_await mod.send(0, 1, net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime gamma_one_way(const Scenario& s, std::int64_t size) {
  GammaBed bed(s.cluster, s.gamma);
  bed.cluster.set_mtu_all(std::min(s.mtu, s.cluster.nic.max_mtu));
  bed.module(0).open_mailbox_port(1);
  bed.module(1).open_mailbox_port(1);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  gamma_pp_initiator(bed.sim_of(0), bed.module(0), size, clock);
  gamma_pp_responder(bed.module(1), size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- VIA ------------------------------------------------------------------------

namespace {
sim::Task via_pp_initiator(sim::Simulator& sim, via::Vi& vi,
                           std::int64_t size, PingPongClock& clock) {
  for (int i = 0; i < clock.reps + 1; ++i) {
    vi.post_recv(size + 64);
    vi.post_send(net::Buffer::zeros(size));
    // Reap the send completion, then poll for the pong.
    (void)co_await vi.poll_wait();
    (void)co_await vi.poll_wait();
    if (i == 0) clock.t0 = sim.now();
  }
  clock.t1 = sim.now();
}

sim::Task via_pp_responder(via::Vi& vi, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    vi.post_recv(size + 64);
    via::Completion c = co_await vi.poll_wait();
    while (c.is_send) c = co_await vi.poll_wait();
    vi.post_send(net::Buffer::zeros(size));
    (void)co_await vi.poll_wait();  // reap send completion
  }
}
}  // namespace

sim::SimTime via_one_way(const Scenario& s, std::int64_t size) {
  ViaBed bed(s.cluster, s.via);
  bed.cluster.set_mtu_all(s.mtu);
  via::Vi& a = bed.provider(0).create_vi();
  via::Vi& b = bed.provider(1).create_vi();
  a.connect(1, b.id());
  b.connect(0, a.id());
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  via_pp_initiator(bed.sim_of(0), a, size, clock);
  via_pp_responder(b, size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- Streams ---------------------------------------------------------------------

namespace {
sim::Task clic_stream_tx(clic::Port& port, std::int64_t message,
                         std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    (void)co_await port.send(1, 1, net::Buffer::zeros(message));
  }
}

sim::Task clic_stream_rx(sim::Simulator& sim, clic::Port& port,
                         std::int64_t count, sim::SimTime& t_end) {
  for (std::int64_t i = 0; i < count; ++i) {
    (void)co_await port.recv();
  }
  t_end = sim.now();
}
}  // namespace

StreamStats clic_stream(const Scenario& s, std::int64_t message_size,
                        std::int64_t total_bytes) {
  ClicBed bed(s.cluster, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  const std::int64_t count =
      std::max<std::int64_t>(total_bytes / message_size, 1);
  sim::SimTime t_end = 0;
  clic_stream_tx(a, message_size, count);
  clic_stream_rx(bed.sim_of(1), b, count, t_end);
  bed.run();

  StreamStats st;
  st.bytes = message_size * count;
  st.elapsed = t_end;
  st.mbps = static_cast<double>(st.bytes) * 8e3 /
            static_cast<double>(std::max<sim::SimTime>(t_end, 1));
  st.tx_cpu = bed.cluster.node(0).cpu().utilization();
  st.rx_cpu = bed.cluster.node(1).cpu().utilization();
  st.rx_interrupts = bed.cluster.node(1).nic(0).interrupts_fired();
  st.rx_frames = bed.cluster.node(1).nic(0).rx_frames();
  st.rx_ring_drops = bed.cluster.node(1).nic(0).rx_ring_drops();
  return st;
}

namespace {
sim::Task tcp_stream_tx(tcpip::TcpStack& stack, std::int64_t total) {
  auto& sock = stack.create_socket();
  (void)co_await sock.connect(1, 5000);
  (void)co_await sock.send(net::Buffer::zeros(total));
  sock.close();
}

sim::Task tcp_stream_rx(sim::Simulator& sim, tcpip::TcpStack& stack,
                        std::int64_t total, sim::SimTime& t_end) {
  tcpip::TcpSocket* sock = co_await stack.accept(5000);
  (void)co_await sock->recv_exact(total);
  t_end = sim.now();
}
}  // namespace

StreamStats tcp_stream(const Scenario& s, std::int64_t total_bytes) {
  TcpBed bed(s.cluster, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  bed.tcp[1]->listen(5000);
  sim::SimTime t_end = 0;
  tcp_stream_tx(*bed.tcp[0], total_bytes);
  tcp_stream_rx(bed.sim_of(1), *bed.tcp[1], total_bytes, t_end);
  bed.run();

  StreamStats st;
  st.bytes = total_bytes;
  st.elapsed = t_end;
  st.mbps = static_cast<double>(total_bytes) * 8e3 /
            static_cast<double>(std::max<sim::SimTime>(t_end, 1));
  st.tx_cpu = bed.cluster.node(0).cpu().utilization();
  st.rx_cpu = bed.cluster.node(1).cpu().utilization();
  st.rx_interrupts = bed.cluster.node(1).nic(0).interrupts_fired();
  st.rx_frames = bed.cluster.node(1).nic(0).rx_frames();
  st.rx_ring_drops = bed.cluster.node(1).nic(0).rx_ring_drops();
  return st;
}

// --- Open-loop traffic (DESIGN.md §4j) --------------------------------------------

namespace {

// Every open-loop message starts with a 16-byte little-endian header of
// four u32 fields; the remainder of the payload is padding. The header is
// echoed by the RPC server, which lets thousands of logical clients
// multiplex one CLIC port / TCP socket per node.
constexpr std::int64_t kWireHeaderBytes = 16;
constexpr int kRpcServerPort = 11;   // CLIC
constexpr int kRpcClientPort = 12;   // CLIC
constexpr int kStreamPort = 13;      // CLIC
constexpr int kRpcTcpPort = 7000;
constexpr int kStreamTcpPort = 7001;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void put_u32(std::vector<std::byte>& v, std::size_t off, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    v[off + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((x >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(std::span<const std::byte> d, std::size_t off) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<std::uint32_t>(
             std::to_integer<unsigned>(d[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return x;
}

net::Buffer wire_message(std::int64_t size, std::uint32_t f0, std::uint32_t f1,
                         std::uint32_t f2, std::uint32_t f3) {
  std::vector<std::byte> bytes(
      static_cast<std::size_t>(std::max(size, kWireHeaderBytes)));
  put_u32(bytes, 0, f0);
  put_u32(bytes, 4, f1);
  put_u32(bytes, 8, f2);
  put_u32(bytes, 12, f3);
  return net::Buffer::bytes(std::move(bytes));
}

// Seeded burst-loss campaign under a workload: random carrier / switch-port /
// DMA outages against every flappable element, all healed by `end` so the
// open-loop run always drains (paper CLIC retries forever; TCP retransmits).
void arm_fault_campaign(sim::FaultPlan& plan, os::Cluster& cluster,
                        sim::SimTime end) {
  register_cluster_targets(plan, cluster);
  sim::FaultPlan::Campaign campaign;
  campaign.start = sim::microseconds(200.0);
  campaign.end = end;
  campaign.outages = 6;
  campaign.min_down = sim::microseconds(100.0);
  campaign.max_down = sim::milliseconds(2.0);
  plan.randomize(campaign);
}

constexpr sim::SimTime kFaultWindow = sim::SimTime{10'000'000};  // 10 ms

}  // namespace

std::vector<sim::SimTime> arrival_times(const ArrivalSpec& spec, int count,
                                        std::uint64_t seed, int client) {
  if (count < 0) throw std::invalid_argument("arrival_times: count < 0");
  if (spec.process != ArrivalSpec::Process::kIncast && spec.rate_per_s <= 0) {
    throw std::invalid_argument("arrival_times: rate_per_s <= 0");
  }
  if (spec.process == ArrivalSpec::Process::kBursty &&
      (spec.on_mean_s <= 0 || spec.off_mean_s < 0)) {
    throw std::invalid_argument("arrival_times: bad burst durations");
  }
  if (spec.process == ArrivalSpec::Process::kIncast &&
      spec.incast_period <= 0) {
    throw std::invalid_argument("arrival_times: incast_period <= 0");
  }
  std::vector<sim::SimTime> out;
  out.reserve(static_cast<std::size_t>(count));
  sim::Rng rng(seed + static_cast<std::uint64_t>(client) *
                          0x9e3779b97f4a7c15ull,
               "open-loop-arrivals");
  const auto push = [&](double t_s) {
    sim::SimTime t = spec.start + sim::seconds(t_s);
    if (!out.empty() && t <= out.back()) t = out.back() + 1;
    out.push_back(t);
  };
  switch (spec.process) {
    case ArrivalSpec::Process::kIncast:
      for (int k = 0; k < count; ++k) {
        sim::SimTime t = spec.start + static_cast<sim::SimTime>(k) *
                                          spec.incast_period;
        if (!out.empty() && t <= out.back()) t = out.back() + 1;
        out.push_back(t);
      }
      break;
    case ArrivalSpec::Process::kPoisson: {
      double t = 0.0;
      for (int k = 0; k < count; ++k) {
        t += rng.exponential(1.0 / spec.rate_per_s);
        push(t);
      }
      break;
    }
    case ArrivalSpec::Process::kBursty: {
      double t = 0.0;
      double remaining_on = rng.exponential(spec.on_mean_s);
      for (int k = 0; k < count; ++k) {
        // Memoryless gaps carry across OFF periods: any part of the gap
        // not covered by the current ON burst spills into the next one.
        double gap = rng.exponential(1.0 / spec.rate_per_s);
        while (gap > remaining_on) {
          gap -= remaining_on;
          t += remaining_on + rng.exponential(spec.off_mean_s);
          remaining_on = rng.exponential(spec.on_mean_s);
        }
        t += gap;
        remaining_on -= gap;
        push(t);
      }
      break;
    }
  }
  return out;
}

namespace {

// Per-client bookkeeping, preallocated before the run. Each latency slot
// is written at most once, by the reader coroutine of the owning client's
// node — single-writer per shard, merged in index order afterwards.
struct RpcState {
  std::vector<std::vector<sim::SimTime>> arrivals;  // [client][seq]
  std::vector<std::vector<sim::SimTime>> latency;   // [client][seq]; -1 open
};

struct PendingReq {
  std::uint32_t client = 0;
  std::uint32_t seq = 0;
};

int rpc_node_of(int client, const RpcConfig& cfg) {
  return 1 + client % cfg.client_nodes;
}

void validate_rpc(const RpcConfig& cfg) {
  if (cfg.client_nodes < 1 || cfg.clients_per_node < 1 ||
      cfg.requests_per_client < 1) {
    throw std::invalid_argument("rpc workload: empty client population");
  }
  if (cfg.request_bytes < kWireHeaderBytes ||
      cfg.response_bytes < kWireHeaderBytes) {
    throw std::invalid_argument("rpc workload: payload below wire header");
  }
}

RpcState make_rpc_state(const RpcConfig& cfg) {
  const int clients = cfg.client_nodes * cfg.clients_per_node;
  RpcState st;
  st.arrivals.resize(static_cast<std::size_t>(clients));
  st.latency.resize(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    st.arrivals[static_cast<std::size_t>(c)] =
        arrival_times(cfg.arrivals, cfg.requests_per_client, cfg.seed, c);
    st.latency[static_cast<std::size_t>(c)].assign(
        static_cast<std::size_t>(cfg.requests_per_client), -1);
  }
  return st;
}

RpcResult fold_rpc(const RpcConfig& cfg, const RpcState& st,
                   std::uint64_t events, sim::SimTime finished) {
  RpcResult r;
  r.latency = sim::HdrHistogram(cfg.sig_digits);
  std::uint64_t h = kFnvOffset;
  for (std::size_t c = 0; c < st.latency.size(); ++c) {
    for (std::size_t k = 0; k < st.latency[c].size(); ++k) {
      const sim::SimTime lat = st.latency[c][k];
      ++r.requests;
      fnv(h, static_cast<std::uint64_t>(c));
      fnv(h, static_cast<std::uint64_t>(k));
      fnv(h, static_cast<std::uint64_t>(lat));
      if (lat >= 0) {
        r.latency.add(lat);
        ++r.responses;
      } else {
        ++r.in_flight;
      }
    }
  }
  r.finished_at = finished;
  r.events = events;
  // The digest certifies workload-visible outcomes only: engine event
  // totals can differ by a no-op drain under retransmission storms at
  // high shard counts while every latency and clock stays bit-identical.
  fnv(h, static_cast<std::uint64_t>(finished));
  r.digest = h;
  return r;
}

// Opens the feeder coroutines: one per logical client, waking at each
// precomputed arrival and queueing the request on its node's mailbox. The
// per-node writer drains the mailbox through the node's single stack
// endpoint — head-of-line blocking across the node's clients is part of
// the modeled workload (one kernel socket queue), and the queueing it
// causes is visible in the tail because latency runs from the *scheduled*
// arrival.
sim::Task rpc_feeder(sim::Simulator& sim,
                     const std::vector<sim::SimTime>& times,
                     std::uint32_t client, sim::Mailbox<PendingReq>& mbox) {
  for (std::uint32_t k = 0; k < times.size(); ++k) {
    const sim::SimTime t = times[k];
    if (t > sim.now()) co_await sim::Delay{sim, t - sim.now()};
    mbox.push({client, k});
  }
}

struct RpcClicRun {
  static sim::Task server(clic::ClicModule& mod, std::uint64_t total) {
    for (std::uint64_t i = 0; i < total; ++i) {
      clic::Message m = co_await mod.recv(kRpcServerPort);
      const auto d = m.data.data();
      const std::uint32_t client = get_u32(d, 0);
      const std::uint32_t seq = get_u32(d, 4);
      const std::uint32_t resp = get_u32(d, 8);
      (void)co_await mod.send(kRpcServerPort, m.src_node, m.src_port,
                              wire_message(resp, client, seq, resp, 0),
                              clic::SendMode::kAsync);
    }
  }

  static sim::Task writer(clic::ClicModule& mod, const RpcConfig& cfg,
                          sim::Mailbox<PendingReq>& mbox,
                          std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const PendingReq rq = co_await mbox.pop();
      (void)co_await mod.send(
          kRpcClientPort, 0, kRpcServerPort,
          wire_message(cfg.request_bytes, rq.client, rq.seq,
                       static_cast<std::uint32_t>(cfg.response_bytes),
                       static_cast<std::uint32_t>(cfg.request_bytes)),
          clic::SendMode::kSync);
    }
  }

  static sim::Task reader(sim::Simulator& sim, clic::ClicModule& mod,
                          RpcState& st, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      clic::Message m = co_await mod.recv(kRpcClientPort);
      const auto d = m.data.data();
      const std::uint32_t client = get_u32(d, 0);
      const std::uint32_t seq = get_u32(d, 4);
      st.latency.at(client).at(seq) =
          sim.now() - st.arrivals.at(client).at(seq);
    }
  }
};

}  // namespace

RpcResult rpc_clic(const Scenario& s, const RpcConfig& cfg) {
  validate_rpc(cfg);
  os::ClusterConfig cc = s.cluster;
  cc.nodes = cfg.client_nodes + 1;
  ClicBed bed(cc, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  RpcState st = make_rpc_state(cfg);

  std::optional<sim::FaultPlan> plan;
  if (cfg.fault_seed != 0) {
    plan.emplace(bed.sim, cfg.fault_seed);
    arm_fault_campaign(*plan, bed.cluster, kFaultWindow);
  }

  bed.module(0).bind_port(kRpcServerPort);
  const auto per_node = static_cast<std::uint64_t>(cfg.clients_per_node) *
                        static_cast<std::uint64_t>(cfg.requests_per_client);
  RpcClicRun::server(bed.module(0),
                     per_node * static_cast<std::uint64_t>(cfg.client_nodes));

  std::vector<std::unique_ptr<sim::Mailbox<PendingReq>>> mboxes;
  for (int n = 1; n <= cfg.client_nodes; ++n) {
    mboxes.push_back(
        std::make_unique<sim::Mailbox<PendingReq>>(bed.sim_of(n)));
    bed.module(n).bind_port(kRpcClientPort);
    RpcClicRun::writer(bed.module(n), cfg, *mboxes.back(), per_node);
    RpcClicRun::reader(bed.sim_of(n), bed.module(n), st, per_node);
  }
  const int clients = cfg.client_nodes * cfg.clients_per_node;
  for (int c = 0; c < clients; ++c) {
    const int n = rpc_node_of(c, cfg);
    rpc_feeder(bed.sim_of(n), st.arrivals[static_cast<std::size_t>(c)],
               static_cast<std::uint32_t>(c), *mboxes[static_cast<std::size_t>(n - 1)]);
  }
  bed.run();
  return fold_rpc(cfg, st, bed.events_executed(), bed.now());
}

namespace {

struct RpcTcpRun {
  static sim::Task server_conn(tcpip::TcpStack& stack, std::uint64_t count) {
    tcpip::TcpSocket* sock = co_await stack.accept(kRpcTcpPort);
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Buffer hdr = co_await sock->recv_exact(kWireHeaderBytes);
      if (hdr.size() < kWireHeaderBytes) co_return;  // EOF
      const auto d = hdr.data();
      const std::uint32_t client = get_u32(d, 0);
      const std::uint32_t seq = get_u32(d, 4);
      const std::uint32_t resp = get_u32(d, 8);
      const std::uint32_t req = get_u32(d, 12);
      if (req > kWireHeaderBytes) {
        (void)co_await sock->recv_exact(req - kWireHeaderBytes);
      }
      (void)co_await sock->send(wire_message(resp, client, seq, resp, 0));
    }
  }

  static sim::Task reader(sim::Simulator& sim, tcpip::TcpSocket& sock,
                          RpcState& st, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Buffer hdr = co_await sock.recv_exact(kWireHeaderBytes);
      if (hdr.size() < kWireHeaderBytes) co_return;
      const auto d = hdr.data();
      const std::uint32_t client = get_u32(d, 0);
      const std::uint32_t seq = get_u32(d, 4);
      const std::uint32_t resp = get_u32(d, 8);
      if (resp > kWireHeaderBytes) {
        (void)co_await sock.recv_exact(resp - kWireHeaderBytes);
      }
      st.latency.at(client).at(seq) =
          sim.now() - st.arrivals.at(client).at(seq);
    }
  }

  static sim::Task client_node(sim::Simulator& sim, tcpip::TcpStack& stack,
                               const RpcConfig& cfg, RpcState& st,
                               sim::Mailbox<PendingReq>& mbox,
                               std::uint64_t count) {
    auto& sock = stack.create_socket();
    const bool ok = co_await sock.connect(0, kRpcTcpPort);
    if (!ok) co_return;
    reader(sim, sock, st, count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const PendingReq rq = co_await mbox.pop();
      (void)co_await sock.send(
          wire_message(cfg.request_bytes, rq.client, rq.seq,
                       static_cast<std::uint32_t>(cfg.response_bytes),
                       static_cast<std::uint32_t>(cfg.request_bytes)));
    }
  }
};

}  // namespace

RpcResult rpc_tcp(const Scenario& s, const RpcConfig& cfg) {
  validate_rpc(cfg);
  os::ClusterConfig cc = s.cluster;
  cc.nodes = cfg.client_nodes + 1;
  TcpBed bed(cc, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  RpcState st = make_rpc_state(cfg);

  std::optional<sim::FaultPlan> plan;
  if (cfg.fault_seed != 0) {
    plan.emplace(bed.sim, cfg.fault_seed);
    arm_fault_campaign(*plan, bed.cluster, kFaultWindow);
  }

  bed.tcp[0]->listen(kRpcTcpPort);
  const auto per_node = static_cast<std::uint64_t>(cfg.clients_per_node) *
                        static_cast<std::uint64_t>(cfg.requests_per_client);
  std::vector<std::unique_ptr<sim::Mailbox<PendingReq>>> mboxes;
  for (int n = 1; n <= cfg.client_nodes; ++n) {
    RpcTcpRun::server_conn(*bed.tcp[0], per_node);
    mboxes.push_back(
        std::make_unique<sim::Mailbox<PendingReq>>(bed.sim_of(n)));
    // connect() drives the SYN path, so the client coroutine starts on its
    // owning shard's clock rather than eagerly at setup (chaos.cpp idiom).
    sim::Mailbox<PendingReq>* mb = mboxes.back().get();
    bed.sim_of(n).at(0, [&bed, &cfg, &st, mb, n, per_node] {
      RpcTcpRun::client_node(bed.sim_of(n),
                             *bed.tcp[static_cast<std::size_t>(n)], cfg, st,
                             *mb, per_node);
    });
  }
  const int clients = cfg.client_nodes * cfg.clients_per_node;
  for (int c = 0; c < clients; ++c) {
    const int n = rpc_node_of(c, cfg);
    rpc_feeder(bed.sim_of(n), st.arrivals[static_cast<std::size_t>(c)],
               static_cast<std::uint32_t>(c), *mboxes[static_cast<std::size_t>(n - 1)]);
  }
  bed.run();
  return fold_rpc(cfg, st, bed.events_executed(), bed.now());
}

namespace {

struct FragGeometry {
  int fragments = 0;               // per frame
  std::int64_t payload_bytes = 0;  // per fragment, excluding the header
};

void validate_streaming(const StreamingConfig& cfg) {
  if (cfg.streams < 1 || cfg.frames_per_stream < 1 || cfg.frame_bytes < 1) {
    throw std::invalid_argument("streaming workload: empty stream set");
  }
  if (cfg.fragment_bytes <= kWireHeaderBytes) {
    throw std::invalid_argument("streaming workload: fragment below header");
  }
  if (cfg.cadence <= 0 || cfg.deadline <= 0) {
    throw std::invalid_argument("streaming workload: bad cadence/deadline");
  }
}

FragGeometry frag_geometry(const StreamingConfig& cfg) {
  FragGeometry g;
  g.payload_bytes = cfg.fragment_bytes - kWireHeaderBytes;
  g.fragments = static_cast<int>((cfg.frame_bytes + g.payload_bytes - 1) /
                                 g.payload_bytes);
  return g;
}

std::int64_t frag_wire_size(const StreamingConfig& cfg, const FragGeometry& g,
                            int index) {
  const std::int64_t remaining =
      cfg.frame_bytes - static_cast<std::int64_t>(index) * g.payload_bytes;
  return kWireHeaderBytes + std::min(g.payload_bytes, remaining);
}

// Frame generation times are a pure function of (config, stream): the
// receiver computes the identical schedule without any metadata exchange.
// Each stream gets a seeded phase offset within one cadence so the senders
// don't fire in lockstep (unless seed collisions make them).
sim::SimTime stream_phase(const StreamingConfig& cfg, int stream) {
  sim::Rng rng(cfg.seed + static_cast<std::uint64_t>(stream) *
                              0x9e3779b97f4a7c15ull,
               "stream-phase");
  return cfg.start + rng.uniform_int(0, cfg.cadence - 1);
}

struct StreamClicRun {
  static sim::Task sender(sim::Simulator& sim, clic::ClicModule& mod,
                          const StreamingConfig& cfg, int stream,
                          FragGeometry g) {
    const sim::SimTime t0 = stream_phase(cfg, stream);
    for (int k = 0; k < cfg.frames_per_stream; ++k) {
      const sim::SimTime gen = t0 + static_cast<sim::SimTime>(k) * cfg.cadence;
      if (gen > sim.now()) co_await sim::Delay{sim, gen - sim.now()};
      for (int f = 0; f < g.fragments; ++f) {
        (void)co_await mod.send(
            kStreamPort, 0, kStreamPort,
            wire_message(frag_wire_size(cfg, g, f),
                         static_cast<std::uint32_t>(stream),
                         static_cast<std::uint32_t>(k),
                         static_cast<std::uint32_t>(f),
                         static_cast<std::uint32_t>(g.fragments)),
            clic::SendMode::kSync);
      }
    }
  }

  static sim::Task receiver(clic::ClicModule& mod,
                            std::vector<std::unique_ptr<JitterBuffer>>& jbs,
                            std::uint64_t total_fragments) {
    for (std::uint64_t i = 0; i < total_fragments; ++i) {
      clic::Message m = co_await mod.recv(kStreamPort);
      const auto d = m.data.data();
      const std::uint32_t stream = get_u32(d, 0);
      const std::uint32_t frame = get_u32(d, 4);
      const std::uint32_t frag = get_u32(d, 8);
      (void)jbs.at(stream)->on_fragment(frame, frag);
    }
  }
};

struct StreamTcpRun {
  static sim::Task server_conn(tcpip::TcpStack& stack,
                               std::vector<std::unique_ptr<JitterBuffer>>& jbs,
                               const StreamingConfig& cfg, FragGeometry g) {
    tcpip::TcpSocket* sock = co_await stack.accept(kStreamTcpPort);
    const auto count = static_cast<std::uint64_t>(cfg.frames_per_stream) *
                       static_cast<std::uint64_t>(g.fragments);
    for (std::uint64_t i = 0; i < count; ++i) {
      net::Buffer hdr = co_await sock->recv_exact(kWireHeaderBytes);
      if (hdr.size() < kWireHeaderBytes) co_return;
      const auto d = hdr.data();
      const std::uint32_t stream = get_u32(d, 0);
      const std::uint32_t frame = get_u32(d, 4);
      const std::uint32_t frag = get_u32(d, 8);
      const std::int64_t size =
          frag_wire_size(cfg, g, static_cast<int>(frag));
      if (size > kWireHeaderBytes) {
        (void)co_await sock->recv_exact(size - kWireHeaderBytes);
      }
      (void)jbs.at(stream)->on_fragment(frame, frag);
    }
  }

  static sim::Task sender(sim::Simulator& sim, tcpip::TcpStack& stack,
                          const StreamingConfig& cfg, int stream,
                          FragGeometry g) {
    auto& sock = stack.create_socket();
    const bool ok = co_await sock.connect(0, kStreamTcpPort);
    if (!ok) co_return;
    const sim::SimTime t0 = stream_phase(cfg, stream);
    for (int k = 0; k < cfg.frames_per_stream; ++k) {
      const sim::SimTime gen = t0 + static_cast<sim::SimTime>(k) * cfg.cadence;
      if (gen > sim.now()) co_await sim::Delay{sim, gen - sim.now()};
      for (int f = 0; f < g.fragments; ++f) {
        (void)co_await sock.send(
            wire_message(frag_wire_size(cfg, g, f),
                         static_cast<std::uint32_t>(stream),
                         static_cast<std::uint32_t>(k),
                         static_cast<std::uint32_t>(f),
                         static_cast<std::uint32_t>(g.fragments)));
      }
    }
  }
};

// Builds node 0's jitter buffers with every frame's deadline pre-scheduled.
std::vector<std::unique_ptr<JitterBuffer>> make_jitter_buffers(
    sim::Simulator& rx_sim, const StreamingConfig& cfg,
    const FragGeometry& g) {
  std::vector<std::unique_ptr<JitterBuffer>> jbs;
  for (int s = 0; s < cfg.streams; ++s) {
    auto jb = std::make_unique<JitterBuffer>(rx_sim, cfg.sig_digits);
    const sim::SimTime t0 = stream_phase(cfg, s);
    for (int k = 0; k < cfg.frames_per_stream; ++k) {
      const sim::SimTime gen = t0 + static_cast<sim::SimTime>(k) * cfg.cadence;
      jb->expect_frame(static_cast<std::uint32_t>(k), g.fragments, gen,
                       gen + cfg.deadline);
    }
    jbs.push_back(std::move(jb));
  }
  return jbs;
}

StreamingResult fold_streaming(
    const StreamingConfig& cfg,
    const std::vector<std::unique_ptr<JitterBuffer>>& jbs,
    std::uint64_t events, sim::SimTime finished) {
  StreamingResult r;
  r.latency = sim::HdrHistogram(cfg.sig_digits);
  std::uint64_t h = kFnvOffset;
  for (const auto& jb : jbs) {  // stream index order
    r.frames += jb->frames_expected();
    r.on_time += jb->frames_on_time();
    r.deadline_misses += jb->deadline_misses();
    r.late_fragments += jb->late_fragments();
    r.duplicate_fragments += jb->duplicate_fragments();
    r.in_flight += jb->pending_frames();
    r.max_depth = std::max(r.max_depth, jb->max_depth());
    r.latency.merge(jb->latency());
    fnv(h, jb->frames_on_time());
    fnv(h, jb->deadline_misses());
    fnv(h, jb->late_fragments());
    fnv(h, jb->duplicate_fragments());
    fnv(h, static_cast<std::uint64_t>(jb->max_depth()));
    fnv(h, jb->latency().count());
    fnv(h, static_cast<std::uint64_t>(jb->latency().min()));
    fnv(h, static_cast<std::uint64_t>(jb->latency().max()));
    fnv(h, static_cast<std::uint64_t>(jb->latency().quantile(0.50)));
    fnv(h, static_cast<std::uint64_t>(jb->latency().quantile(0.99)));
    fnv(h, static_cast<std::uint64_t>(jb->latency().quantile(0.999)));
  }
  r.finished_at = finished;
  r.events = events;
  // Workload-visible outcomes only; see fold_rpc on engine event totals.
  fnv(h, static_cast<std::uint64_t>(finished));
  r.digest = h;
  return r;
}

}  // namespace

StreamingResult streaming_clic(const Scenario& s, const StreamingConfig& cfg) {
  validate_streaming(cfg);
  os::ClusterConfig cc = s.cluster;
  cc.nodes = cfg.streams + 1;
  ClicBed bed(cc, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  const FragGeometry g = frag_geometry(cfg);

  std::optional<sim::FaultPlan> plan;
  if (cfg.fault_seed != 0) {
    plan.emplace(bed.sim, cfg.fault_seed);
    arm_fault_campaign(*plan, bed.cluster, kFaultWindow);
  }

  auto jbs = make_jitter_buffers(bed.sim_of(0), cfg, g);
  bed.module(0).bind_port(kStreamPort);
  const auto total = static_cast<std::uint64_t>(cfg.streams) *
                     static_cast<std::uint64_t>(cfg.frames_per_stream) *
                     static_cast<std::uint64_t>(g.fragments);
  StreamClicRun::receiver(bed.module(0), jbs, total);
  for (int st = 0; st < cfg.streams; ++st) {
    bed.module(st + 1).bind_port(kStreamPort);
    StreamClicRun::sender(bed.sim_of(st + 1), bed.module(st + 1), cfg, st, g);
  }
  bed.run();
  return fold_streaming(cfg, jbs, bed.events_executed(), bed.now());
}

StreamingResult streaming_tcp(const Scenario& s, const StreamingConfig& cfg) {
  validate_streaming(cfg);
  os::ClusterConfig cc = s.cluster;
  cc.nodes = cfg.streams + 1;
  TcpBed bed(cc, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  const FragGeometry g = frag_geometry(cfg);

  std::optional<sim::FaultPlan> plan;
  if (cfg.fault_seed != 0) {
    plan.emplace(bed.sim, cfg.fault_seed);
    arm_fault_campaign(*plan, bed.cluster, kFaultWindow);
  }

  auto jbs = make_jitter_buffers(bed.sim_of(0), cfg, g);
  bed.tcp[0]->listen(kStreamTcpPort);
  for (int st = 0; st < cfg.streams; ++st) {
    StreamTcpRun::server_conn(*bed.tcp[0], jbs, cfg, g);
    bed.sim_of(st + 1).at(0, [&bed, &cfg, &g, st] {
      StreamTcpRun::sender(bed.sim_of(st + 1),
                           *bed.tcp[static_cast<std::size_t>(st + 1)], cfg, st,
                           g);
    });
  }
  bed.run();
  return fold_streaming(cfg, jbs, bed.events_executed(), bed.now());
}

// --- Sweep helpers ---------------------------------------------------------------

std::vector<std::int64_t> sweep_sizes(std::int64_t lo, std::int64_t hi,
                                      int per_decade) {
  if (lo < 1 || hi < lo || per_decade < 1) {
    throw std::invalid_argument("sweep_sizes: bad range");
  }
  std::vector<std::int64_t> sizes;
  const double step = std::pow(10.0, 1.0 / per_decade);
  double x = static_cast<double>(lo);
  std::int64_t last = 0;
  while (x <= static_cast<double>(hi) * 1.0001) {
    const auto v = static_cast<std::int64_t>(std::llround(x));
    if (v != last) sizes.push_back(v);
    last = v;
    x *= step;
  }
  if (sizes.empty() || sizes.back() < hi) sizes.push_back(hi);
  return sizes;
}

sim::Series bandwidth_series(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way) {
  sim::Series series(name);
  for (const auto size : sizes) {
    series.add(static_cast<double>(size), to_mbps(size, one_way(size)));
  }
  return series;
}

}  // namespace clicsim::apps
