#include "apps/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace clicsim::apps {

double to_mbps(std::int64_t size, sim::SimTime one_way) {
  if (one_way <= 0) return 0.0;
  return static_cast<double>(size) * 8e3 / static_cast<double>(one_way);
}

namespace {

// Shared ping-pong skeleton: `leg(dst)` sends one message to the peer,
// `take()` blocks for one inbound message. The initiator measures reps
// round trips after one warm-up.
struct PingPongClock {
  sim::SimTime t0 = 0;
  sim::SimTime t1 = 0;
  int reps = 5;

  [[nodiscard]] sim::SimTime one_way() const {
    return (t1 - t0) / (2 * reps);
  }
};

}  // namespace

// --- CLIC -----------------------------------------------------------------------

namespace {
sim::Task clic_pp_initiator(sim::Simulator& sim, clic::Port& port,
                            std::int64_t size, PingPongClock& clock) {
  (void)co_await port.send(1, 1, net::Buffer::zeros(size));
  (void)co_await port.recv();
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await port.send(1, 1, net::Buffer::zeros(size));
    (void)co_await port.recv();
  }
  clock.t1 = sim.now();
}

sim::Task clic_pp_responder(clic::Port& port, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await port.recv();
    (void)co_await port.send(0, 1, net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime clic_one_way(const Scenario& s, std::int64_t size) {
  ClicBed bed(s.cluster, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  clic_pp_initiator(bed.sim_of(0), a, size, clock);
  clic_pp_responder(b, size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- TCP ------------------------------------------------------------------------

namespace {
sim::Task tcp_pp_initiator(sim::Simulator& sim, tcpip::TcpStack& stack,
                           std::int64_t size, PingPongClock& clock) {
  auto& sock = stack.create_socket();
  (void)co_await sock.connect(1, 5000);
  (void)co_await sock.send(net::Buffer::zeros(size));
  (void)co_await sock.recv_exact(size);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await sock.send(net::Buffer::zeros(size));
    (void)co_await sock.recv_exact(size);
  }
  clock.t1 = sim.now();
}

sim::Task tcp_pp_responder(tcpip::TcpStack& stack, std::int64_t size,
                           int reps) {
  tcpip::TcpSocket* sock = co_await stack.accept(5000);
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await sock->recv_exact(size);
    (void)co_await sock->send(net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime tcp_one_way(const Scenario& s, std::int64_t size) {
  TcpBed bed(s.cluster, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  bed.tcp[1]->listen(5000);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  tcp_pp_initiator(bed.sim_of(0), *bed.tcp[0], std::max<std::int64_t>(size, 1),
                   clock);
  tcp_pp_responder(*bed.tcp[1], std::max<std::int64_t>(size, 1), clock.reps);
  bed.run();
  return clock.one_way();
}

// --- MPI ------------------------------------------------------------------------

namespace {
sim::Task mpi_pp_initiator(sim::Simulator& sim, mpi::Communicator& comm,
                           std::int64_t size, PingPongClock& clock) {
  (void)co_await comm.send(1, 7, net::Buffer::zeros(size));
  (void)co_await comm.recv(1, 7);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await comm.send(1, 7, net::Buffer::zeros(size));
    (void)co_await comm.recv(1, 7);
  }
  clock.t1 = sim.now();
}

sim::Task mpi_pp_responder(mpi::Communicator& comm, std::int64_t size,
                           int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await comm.recv(0, 7);
    (void)co_await comm.send(0, 7, net::Buffer::zeros(size));
  }
}

sim::Task mpi_tcp_pp_all(MpiTcpBed& bed, std::int64_t size,
                         PingPongClock& clock) {
  const bool ok = co_await bed.connect();
  if (!ok) co_return;
  mpi_pp_initiator(bed.sim(), bed.comm(0), size, clock);
  mpi_pp_responder(bed.comm(1), size, clock.reps);
}
}  // namespace

sim::SimTime mpi_clic_one_way(const Scenario& s, std::int64_t size) {
  MpiClicBed bed(s.cluster, s.clic, s.mpi);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  mpi_pp_initiator(bed.sim(), bed.comm(0), size, clock);
  mpi_pp_responder(bed.comm(1), size, clock.reps);
  // Group-wide run: the CLIC bed shards, and sim().run() alone would
  // silently simulate only shard 0's slice (rank 1 never answers).
  bed.run();
  return clock.one_way();
}

sim::SimTime mpi_tcp_one_way(const Scenario& s, std::int64_t size) {
  MpiTcpBed bed(s.cluster, s.tcp, s.mpi);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  mpi_tcp_pp_all(bed, size, clock);
  bed.sim().run();
  return clock.one_way();
}

// --- PVM ------------------------------------------------------------------------

namespace {
sim::Task pvm_pp_initiator(sim::Simulator& sim, pvm::PvmTask& task,
                           std::int64_t size, PingPongClock& clock) {
  for (int i = 0; i < clock.reps + 1; ++i) {
    task.initsend();
    (void)co_await task.pack(net::Buffer::zeros(size));
    (void)co_await task.send(1, 7);
    pvm::PvmMessage m = co_await task.recv(1, 7);
    (void)co_await task.unpack(m, size);
    if (i == 0) clock.t0 = sim.now();
  }
  clock.t1 = sim.now();
}

sim::Task pvm_pp_responder(pvm::PvmTask& task, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    pvm::PvmMessage m = co_await task.recv(0, 7);
    (void)co_await task.unpack(m, size);
    task.initsend();
    (void)co_await task.pack(net::Buffer::zeros(size));
    (void)co_await task.send(0, 7);
  }
}

sim::Task pvm_pp_all(PvmBed& bed, std::int64_t size, PingPongClock& clock) {
  const bool ok = co_await bed.connect();
  if (!ok) co_return;
  pvm_pp_initiator(bed.sim(), bed.task(0), size, clock);
  pvm_pp_responder(bed.task(1), size, clock.reps);
}
}  // namespace

sim::SimTime pvm_one_way(const Scenario& s, std::int64_t size) {
  PvmBed bed(s.cluster, s.tcp, s.pvm);
  bed.bed.cluster.set_mtu_all(s.mtu);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  pvm_pp_all(bed, size, clock);
  bed.sim().run();
  return clock.one_way();
}

// --- GAMMA ----------------------------------------------------------------------

namespace {
sim::Task gamma_pp_initiator(sim::Simulator& sim, gamma::GammaModule& mod,
                             std::int64_t size, PingPongClock& clock) {
  (void)co_await mod.send(1, 1, net::Buffer::zeros(size));
  (void)co_await mod.recv(1);
  clock.t0 = sim.now();
  for (int i = 0; i < clock.reps; ++i) {
    (void)co_await mod.send(1, 1, net::Buffer::zeros(size));
    (void)co_await mod.recv(1);
  }
  clock.t1 = sim.now();
}

sim::Task gamma_pp_responder(gamma::GammaModule& mod, std::int64_t size,
                             int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    (void)co_await mod.recv(1);
    (void)co_await mod.send(0, 1, net::Buffer::zeros(size));
  }
}
}  // namespace

sim::SimTime gamma_one_way(const Scenario& s, std::int64_t size) {
  GammaBed bed(s.cluster, s.gamma);
  bed.cluster.set_mtu_all(std::min(s.mtu, s.cluster.nic.max_mtu));
  bed.module(0).open_mailbox_port(1);
  bed.module(1).open_mailbox_port(1);
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  gamma_pp_initiator(bed.sim_of(0), bed.module(0), size, clock);
  gamma_pp_responder(bed.module(1), size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- VIA ------------------------------------------------------------------------

namespace {
sim::Task via_pp_initiator(sim::Simulator& sim, via::Vi& vi,
                           std::int64_t size, PingPongClock& clock) {
  for (int i = 0; i < clock.reps + 1; ++i) {
    vi.post_recv(size + 64);
    vi.post_send(net::Buffer::zeros(size));
    // Reap the send completion, then poll for the pong.
    (void)co_await vi.poll_wait();
    (void)co_await vi.poll_wait();
    if (i == 0) clock.t0 = sim.now();
  }
  clock.t1 = sim.now();
}

sim::Task via_pp_responder(via::Vi& vi, std::int64_t size, int reps) {
  for (int i = 0; i < reps + 1; ++i) {
    vi.post_recv(size + 64);
    via::Completion c = co_await vi.poll_wait();
    while (c.is_send) c = co_await vi.poll_wait();
    vi.post_send(net::Buffer::zeros(size));
    (void)co_await vi.poll_wait();  // reap send completion
  }
}
}  // namespace

sim::SimTime via_one_way(const Scenario& s, std::int64_t size) {
  ViaBed bed(s.cluster, s.via);
  bed.cluster.set_mtu_all(s.mtu);
  via::Vi& a = bed.provider(0).create_vi();
  via::Vi& b = bed.provider(1).create_vi();
  a.connect(1, b.id());
  b.connect(0, a.id());
  PingPongClock clock;
  clock.reps = s.pingpong_reps;
  via_pp_initiator(bed.sim_of(0), a, size, clock);
  via_pp_responder(b, size, clock.reps);
  bed.run();
  return clock.one_way();
}

// --- Streams ---------------------------------------------------------------------

namespace {
sim::Task clic_stream_tx(clic::Port& port, std::int64_t message,
                         std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    (void)co_await port.send(1, 1, net::Buffer::zeros(message));
  }
}

sim::Task clic_stream_rx(sim::Simulator& sim, clic::Port& port,
                         std::int64_t count, sim::SimTime& t_end) {
  for (std::int64_t i = 0; i < count; ++i) {
    (void)co_await port.recv();
  }
  t_end = sim.now();
}
}  // namespace

StreamStats clic_stream(const Scenario& s, std::int64_t message_size,
                        std::int64_t total_bytes) {
  ClicBed bed(s.cluster, s.clic);
  bed.cluster.set_mtu_all(s.mtu);
  clic::Port a(bed.module(0), 1);
  clic::Port b(bed.module(1), 1);
  const std::int64_t count =
      std::max<std::int64_t>(total_bytes / message_size, 1);
  sim::SimTime t_end = 0;
  clic_stream_tx(a, message_size, count);
  clic_stream_rx(bed.sim_of(1), b, count, t_end);
  bed.run();

  StreamStats st;
  st.bytes = message_size * count;
  st.elapsed = t_end;
  st.mbps = static_cast<double>(st.bytes) * 8e3 /
            static_cast<double>(std::max<sim::SimTime>(t_end, 1));
  st.tx_cpu = bed.cluster.node(0).cpu().utilization();
  st.rx_cpu = bed.cluster.node(1).cpu().utilization();
  st.rx_interrupts = bed.cluster.node(1).nic(0).interrupts_fired();
  st.rx_frames = bed.cluster.node(1).nic(0).rx_frames();
  st.rx_ring_drops = bed.cluster.node(1).nic(0).rx_ring_drops();
  return st;
}

namespace {
sim::Task tcp_stream_tx(tcpip::TcpStack& stack, std::int64_t total) {
  auto& sock = stack.create_socket();
  (void)co_await sock.connect(1, 5000);
  (void)co_await sock.send(net::Buffer::zeros(total));
  sock.close();
}

sim::Task tcp_stream_rx(sim::Simulator& sim, tcpip::TcpStack& stack,
                        std::int64_t total, sim::SimTime& t_end) {
  tcpip::TcpSocket* sock = co_await stack.accept(5000);
  (void)co_await sock->recv_exact(total);
  t_end = sim.now();
}
}  // namespace

StreamStats tcp_stream(const Scenario& s, std::int64_t total_bytes) {
  TcpBed bed(s.cluster, s.tcp);
  bed.cluster.set_mtu_all(s.mtu);
  bed.tcp[1]->listen(5000);
  sim::SimTime t_end = 0;
  tcp_stream_tx(*bed.tcp[0], total_bytes);
  tcp_stream_rx(bed.sim_of(1), *bed.tcp[1], total_bytes, t_end);
  bed.run();

  StreamStats st;
  st.bytes = total_bytes;
  st.elapsed = t_end;
  st.mbps = static_cast<double>(total_bytes) * 8e3 /
            static_cast<double>(std::max<sim::SimTime>(t_end, 1));
  st.tx_cpu = bed.cluster.node(0).cpu().utilization();
  st.rx_cpu = bed.cluster.node(1).cpu().utilization();
  st.rx_interrupts = bed.cluster.node(1).nic(0).interrupts_fired();
  st.rx_frames = bed.cluster.node(1).nic(0).rx_frames();
  st.rx_ring_drops = bed.cluster.node(1).nic(0).rx_ring_drops();
  return st;
}

// --- Sweep helpers ---------------------------------------------------------------

std::vector<std::int64_t> sweep_sizes(std::int64_t lo, std::int64_t hi,
                                      int per_decade) {
  if (lo < 1 || hi < lo || per_decade < 1) {
    throw std::invalid_argument("sweep_sizes: bad range");
  }
  std::vector<std::int64_t> sizes;
  const double step = std::pow(10.0, 1.0 / per_decade);
  double x = static_cast<double>(lo);
  std::int64_t last = 0;
  while (x <= static_cast<double>(hi) * 1.0001) {
    const auto v = static_cast<std::int64_t>(std::llround(x));
    if (v != last) sizes.push_back(v);
    last = v;
    x *= step;
  }
  if (sizes.empty() || sizes.back() < hi) sizes.push_back(hi);
  return sizes;
}

sim::Series bandwidth_series(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way) {
  sim::Series series(name);
  for (const auto size : sizes) {
    series.add(static_cast<double>(size), to_mbps(size, one_way(size)));
  }
  return series;
}

}  // namespace clicsim::apps
