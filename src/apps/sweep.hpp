// Figure-sweep harness: a figure is a vector of self-contained scenario
// jobs, each constructing its own Simulator/cluster from a plain config
// struct and returning a POD result row.
//
// Jobs execute on a sim::ParallelExecutor; result rows come back slotted in
// add() order and each job's log output is buffered in a per-simulation
// sink and flushed in the same order, so a binary's output is byte-identical
// regardless of -j. `-j1` runs the jobs inline on the calling thread —
// exactly the historical sequential behavior.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/log.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace clicsim::apps {

struct SweepOptions {
  int jobs = 0;    // worker threads; <= 0 means every hardware core
  int shards = 1;  // intra-scenario PDES shards per simulation (1 = serial)
};

// Parses the shared benchmark command line: `-j N`, `-jN`, `--jobs N` or
// `--jobs=N` select the worker count (default: all cores; `-j1` reproduces
// the sequential run bit for bit); `--shards N` / `--shards=N` shard each
// individual simulation across N PDES worker threads (default 1; output is
// byte-identical at any shard count). `-h`/`--help` prints usage and exits
// 0; anything unrecognized prints usage to stderr and exits 2.
SweepOptions parse_sweep_args(int argc, char** argv);

template <typename Row>
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : options_(options) {}

  // Registers one self-contained scenario job; returns its row index.
  std::size_t add(std::function<Row()> job) {
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  // Runs every registered job and returns the rows in add() order.
  // Per-simulation log output is flushed to stderr in the same order; pass
  // `captured_logs` to collect it instead (index-aligned with the rows).
  std::vector<Row> run(std::vector<std::string>* captured_logs = nullptr) {
    std::vector<Row> rows(jobs_.size());
    std::vector<std::string> logs(jobs_.size());
    const sim::ParallelExecutor pool(options_.jobs);
    pool.run_indexed(jobs_.size(), [&](std::size_t i) {
      const sim::ScopedLogSink sink(&logs[i]);
      rows[i] = jobs_[i]();
    });
    if (captured_logs != nullptr) {
      *captured_logs = std::move(logs);
    } else {
      for (const auto& l : logs) {
        if (!l.empty()) std::fputs(l.c_str(), stderr);
      }
    }
    jobs_.clear();
    return rows;
  }

 private:
  SweepOptions options_;
  std::vector<std::function<Row()>> jobs_;
};

// One bandwidth curve of a figure: a name plus the one-way-time driver the
// sweep sizes are fed through.
struct SeriesSpec {
  std::string name;
  std::function<sim::SimTime(std::int64_t)> one_way;
};

// Builds every (series, size) bandwidth point as one job in a single flat
// FIFO and reassembles the curves in spec order. This is the workhorse of
// the figure binaries: all points of all curves share the worker pool.
[[nodiscard]] std::vector<sim::Series> bandwidth_series_set(
    const std::vector<SeriesSpec>& specs,
    const std::vector<std::int64_t>& sizes, const SweepOptions& options);

}  // namespace clicsim::apps
