// Pre-wired test beds: a cluster plus one protocol stack per node, ready
// for workloads. Shared by the unit/integration tests, the benchmark
// harness and the examples.
#pragma once

#include <memory>
#include <vector>

#include "clic/api.hpp"
#include "gamma/gamma.hpp"
#include "hw/nic_collective.hpp"
#include "mpi/comm.hpp"
#include "net/buffer_pool.hpp"
#include "os/address.hpp"
#include "os/cluster.hpp"
#include "pvm/pvm.hpp"
#include "tcpip/tcp.hpp"
#include "tcpip/udp.hpp"
#include "via/via.hpp"

namespace clicsim::apps {

// Every bed owns a per-simulation packet-buffer arena. Declared first so
// it outlives everything that holds Buffers/HeaderBlobs, and installed as
// the thread-current pool for the bed's lifetime (testbeds follow a
// construct → drive → destroy discipline on one thread, so the LIFO scope
// matches the bed that is actually running). Pools are strictly
// per-simulation: parallel sweep workers never share one — and in a
// sharded bed each worker shard gets its own pool, installed as that
// worker thread's scope for the duration of the run.

// Shared chassis of the single-stack beds: pool, home simulator, shard
// group, cluster and address map. `cluster_config.shards` (clamped to
// [1, nodes + switches]) selects intra-scenario PDES; with 1 shard everything
// below is the classic single-threaded bed, bit for bit. Drive a bed
// through run()/run_until() — with shards these coordinate the whole
// group, and `sim.run()` alone would deadlock-free but silently simulate
// only shard 0.
struct BedCore {
  net::BufferPool pool;
  net::BufferPool::Scope pool_scope{&pool};
  sim::Simulator sim;
  sim::ShardGroup shards;
  std::vector<std::unique_ptr<net::BufferPool>> shard_pools;
  os::Cluster cluster;
  os::AddressMap addresses;

  explicit BedCore(os::ClusterConfig cluster_config);

  // Group-wide lifecycle; identical to the corresponding sim.* calls in a
  // single-shard bed.
  std::uint64_t run() { return shards.run(); }
  std::uint64_t run_until(sim::SimTime t) { return shards.run_until(t); }
  [[nodiscard]] bool pending() const { return shards.pending(); }
  [[nodiscard]] sim::SimTime now() const { return shards.now(); }
  [[nodiscard]] std::uint64_t events_executed() const {
    return shards.events_executed();
  }
  // The simulator that drives `node` (its clock source for scheduling
  // node-local work from the controlling thread).
  [[nodiscard]] sim::Simulator& sim_of(int node) {
    return cluster.sim_of_node(node);
  }
};

// N nodes running CLIC.
struct ClicBed : BedCore {
  std::vector<std::unique_ptr<clic::ClicModule>> modules;

  explicit ClicBed(os::ClusterConfig cluster_config = {},
                   clic::Config clic_config = {});

  [[nodiscard]] clic::ClicModule& module(int node) {
    return *modules.at(static_cast<std::size_t>(node));
  }
};

// N nodes running the TCP/IP stack.
struct TcpBed : BedCore {
  std::vector<std::unique_ptr<tcpip::IpLayer>> ip;
  std::vector<std::unique_ptr<tcpip::TcpStack>> tcp;
  std::vector<std::unique_ptr<tcpip::UdpStack>> udp;

  explicit TcpBed(os::ClusterConfig cluster_config = {},
                  tcpip::Config tcp_config = {});
};

// N ranks of mini-MPI over CLIC (rank i == node i). With
// `nic_collectives`, each rank's NIC 0 gets a hw::NicCollectiveEngine and
// the communicators run barrier/bcast/allreduce on the cards instead of
// host trees (bench/collective_scale's offload contender).
struct MpiClicBed {
  ClicBed bed;
  std::vector<std::unique_ptr<hw::NicCollectiveEngine>> engines;
  std::vector<std::unique_ptr<mpi::ClicTransport>> transports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;

  explicit MpiClicBed(os::ClusterConfig cluster_config = {},
                      clic::Config clic_config = {},
                      mpi::Config mpi_config = {},
                      bool nic_collectives = false);

  [[nodiscard]] mpi::Communicator& comm(int rank) {
    return *comms.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] sim::Simulator& sim() { return bed.sim; }
  // The simulator that drives rank r (schedule rank-local work here; in a
  // sharded bed `sim()` alone would race the worker shards).
  [[nodiscard]] sim::Simulator& sim_of(int rank) { return bed.sim_of(rank); }
  // Group-wide lifecycle (see BedCore).
  std::uint64_t run() { return bed.run(); }
  [[nodiscard]] sim::SimTime now() const { return bed.now(); }
};

// N ranks of mini-MPI over TCP. Call connect() (and run the sim) before
// using the communicators.
struct MpiTcpBed {
  TcpBed bed;
  std::vector<std::unique_ptr<mpi::TcpTransport>> transports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;

  explicit MpiTcpBed(os::ClusterConfig cluster_config = {},
                     tcpip::Config tcp_config = {},
                     mpi::Config mpi_config = {});

  // Establishes the socket mesh; returns the future to await.
  [[nodiscard]] sim::Future<bool> connect();

  [[nodiscard]] mpi::Communicator& comm(int rank) {
    return *comms.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] sim::Simulator& sim() { return bed.sim; }
};

// N PVM tasks over TCP (tid i == node i).
struct PvmBed {
  TcpBed bed;
  std::vector<std::unique_ptr<mpi::TcpTransport>> transports;
  std::vector<std::unique_ptr<pvm::PvmTask>> tasks;
  pvm::Config pvm_config;

  explicit PvmBed(os::ClusterConfig cluster_config = {},
                  tcpip::Config tcp_config = {}, pvm::Config config = {});

  [[nodiscard]] sim::Future<bool> connect();
  [[nodiscard]] pvm::PvmTask& task(int tid) {
    return *tasks.at(static_cast<std::size_t>(tid));
  }
  [[nodiscard]] sim::Simulator& sim() { return bed.sim; }

 private:
  bool tasks_built_ = false;
};

// N nodes running GAMMA.
struct GammaBed : BedCore {
  std::vector<std::unique_ptr<gamma::GammaModule>> modules;

  explicit GammaBed(os::ClusterConfig cluster_config = {},
                    gamma::Config gamma_config = {});

  [[nodiscard]] gamma::GammaModule& module(int node) {
    return *modules.at(static_cast<std::size_t>(node));
  }
};

// N nodes running VIA (one VI per ordered node pair is up to the caller).
struct ViaBed : BedCore {
  std::vector<std::unique_ptr<via::ViaProvider>> providers;

  explicit ViaBed(os::ClusterConfig cluster_config = {},
                  via::Config via_config = {});

  [[nodiscard]] via::ViaProvider& provider(int node) {
    return *providers.at(static_cast<std::size_t>(node));
  }
};

}  // namespace clicsim::apps
