#include "apps/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "apps/testbed.hpp"
#include "sim/task.hpp"

namespace clicsim::apps {

namespace {

// Probabilistic link misbehaviour while the fault window is open. The
// values are deliberately hostile: half the frames die inside a burst,
// and a few percent of survivors are duplicated or shoved out of order.
constexpr double kGeGoodToBad = 0.05;
constexpr double kGeBadToGood = 0.30;
constexpr double kGeLossGood = 0.001;
constexpr double kGeLossBad = 0.50;
constexpr double kDupProbability = 0.02;
constexpr double kDelayProbability = 0.05;
constexpr sim::SimTime kDelayJitter = sim::microseconds(100.0);

// Per-message bookkeeping; the vectors owning these never reallocate
// while coroutines hold pointers into them.
struct MessageState {
  bool resolved = false;
  bool ok = false;
  int delivered = 0;    // intact deliveries observed
  bool corrupt = false;  // a delivery whose payload did not match
};

void configure_link_faults(os::Cluster& cluster, const ChaosOptions& o) {
  int stream = 0;
  auto arm = [&](net::FaultInjector& f) {
    // One independent stream per link direction, all derived from the
    // campaign seed so the whole storm replays from one integer.
    f.set_seed(o.seed * 1000003u + static_cast<std::uint64_t>(stream++));
    if (o.gilbert_elliott) {
      f.set_gilbert_elliott(kGeGoodToBad, kGeBadToGood, kGeLossGood,
                            kGeLossBad);
    }
    if (o.duplicates) f.set_duplicate_probability(kDupProbability);
    if (o.reorder) f.set_delay(kDelayProbability, kDelayJitter);
  };
  for (int i = 0; i < cluster.size(); ++i) {
    for (int j = 0; j < cluster.config().nics_per_node; ++j) {
      for (int d = 0; d < 2; ++d) arm(cluster.link(i, j).faults(d));
    }
  }
  // Trunk streams draw after every node-link stream, so the star's streams
  // (which have no trunks) are untouched by this loop existing.
  for (int t = 0; t < cluster.trunk_count(); ++t) {
    for (int d = 0; d < 2; ++d) arm(cluster.trunk_link(t).faults(d));
  }
}

void clear_one_injector(net::FaultInjector& f) {
  f.clear_gilbert_elliott();
  f.set_drop_probability(0.0);
  f.set_corrupt_probability(0.0);
  f.set_duplicate_probability(0.0);
  f.set_delay(0.0, 0);
}

// Heals every link injector at `when`. A direction's injector lives on the
// sending end's shard, so the clears are split into scripted pieces per
// owning simulator: one per node-bearing switch for the switch ends of its
// own node links (switch 0 first — it carries the fired-fault count), one
// per node for the node ends, one per trunk end. In a single-shard run
// every piece lands on the same simulator and the effect (and the plan's
// telemetry) is exactly the historical single clear-all event.
void schedule_clear_link_faults(sim::FaultPlan& plan, os::Cluster& cluster,
                                sim::SimTime when) {
  std::vector<std::pair<sim::Simulator*, sim::FaultPlan::Hook>> parts;
  for (int s = 0; s < cluster.topology().leaves(); ++s) {
    parts.emplace_back(&cluster.sim_of_switch(s), [&cluster, s] {
      for (int i = 0; i < cluster.size(); ++i) {
        if (cluster.topology().leaf_of_node(i) != s) continue;
        for (int j = 0; j < cluster.config().nics_per_node; ++j) {
          clear_one_injector(cluster.link(i, j).faults(1));
        }
      }
    });
  }
  for (int i = 0; i < cluster.size(); ++i) {
    parts.emplace_back(&cluster.sim_of_node(i), [&cluster, i] {
      for (int j = 0; j < cluster.config().nics_per_node; ++j) {
        clear_one_injector(cluster.link(i, j).faults(0));
      }
    });
  }
  for (int t = 0; t < cluster.trunk_count(); ++t) {
    net::Link* link = &cluster.trunk_link(t);
    for (int d = 0; d < 2; ++d) {
      parts.emplace_back(&link->end_sim(d),
                         [link, d] { clear_one_injector(link->faults(d)); });
    }
  }
  plan.script_parts(when, std::move(parts));
}

// The hard partition: longer than the CLIC channel's full retry budget
// (~1.4 s at the default rto/backoff/cap/max_retries), still healing well
// inside the default fault window.
constexpr sim::SimTime kPartitionStart = sim::milliseconds(200.0);
constexpr sim::SimTime kPartitionEnd = sim::milliseconds(2400.0);

void schedule_hard_partition(sim::FaultPlan& plan, os::Cluster& cluster,
                             std::uint64_t seed) {
  const int victim = static_cast<int>(seed % static_cast<std::uint64_t>(
                                                 cluster.size()));
  const std::string name = "carrier " + cluster.link(victim, 0).name();
  for (int t = 0; t < plan.target_count(); ++t) {
    if (plan.target_name(t) == name) {
      plan.fail_between(t, kPartitionStart, kPartitionEnd);
      return;
    }
  }
}

// Destination for message m: round-robin source, hopping offset so every
// ordered pair eventually appears.
int chaos_src(int m, int nodes) { return m % nodes; }
int chaos_dst(int m, int nodes) {
  const int offset = 1 + (m / nodes) % (std::max(nodes - 1, 1));
  return (chaos_src(m, nodes) + offset) % nodes;
}

void collect_fault_telemetry(ChaosReport& r, os::Cluster& cluster) {
  auto tally = [&r](net::Link& link) {
    for (int d = 0; d < 2; ++d) {
      r.link_drops += link.faults(d).dropped();
      r.link_burst_drops += link.faults(d).burst_drops();
      r.link_duplicates += link.faults(d).duplicated();
      r.link_delayed += link.faults(d).delayed();
    }
    r.carrier_drops += link.carrier_drops();
  };
  for (int i = 0; i < cluster.size(); ++i) {
    for (int j = 0; j < cluster.config().nics_per_node; ++j) {
      tally(cluster.link(i, j));
      r.nic_stall_drops += cluster.node(i).nic(j).stall_drops();
    }
  }
  for (int t = 0; t < cluster.trunk_count(); ++t) {
    tally(cluster.trunk_link(t));
  }
  for (int s = 0; s < cluster.switch_count(); ++s) {
    r.switch_port_drops += cluster.switch_at(s).port_down_drops();
    r.switch_tail_drops += cluster.switch_at(s).dropped();
  }
}

bool timers_clean(os::Cluster& cluster) {
  for (int i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).kernel().timer_wheel().size() != 0) return false;
  }
  return true;
}

void finalize_invariants(ChaosReport& r,
                         const std::vector<MessageState>& states) {
  for (const MessageState& st : states) {
    if (st.resolved) ++r.resolved;
    if (st.resolved && st.ok) ++r.succeeded;
    if (st.resolved && !st.ok) ++r.failed;
    r.delivered += st.delivered;
    // ok ⇒ delivered exactly once. failed ⇒ at most once (the data may
    // have landed with only the acks black-holed). Corrupt or duplicate
    // deliveries are violations outright.
    if (st.corrupt) ++r.invariant_violations;
    if (st.resolved && st.ok && st.delivered != 1) ++r.invariant_violations;
    if (st.resolved && !st.ok && st.delivered > 1) ++r.invariant_violations;
    if (!st.resolved) ++r.invariant_violations;  // hung send
  }
}

ChaosReport run_clic(const ChaosOptions& o) {
  ChaosReport r;
  r.stack = ChaosStack::kClic;
  r.seed = o.seed;
  r.messages = o.messages;

  os::ClusterConfig cc;
  cc.nodes = o.nodes;
  cc.shards = o.shards;
  cc.topology = o.topology;
  clic::Config clc;
  clc.seed = o.seed;
  // Desynchronize retransmission across channels that black-hole together;
  // jitter is off by default to keep the figure baselines bit-identical.
  clc.rto_jitter = 0.25;
  clc.adaptive = o.adaptive;
  ClicBed bed(cc, clc);

  sim::FaultPlan plan(bed.sim, o.seed);
  register_cluster_targets(plan, bed.cluster);
  configure_link_faults(bed.cluster, o);
  schedule_clear_link_faults(plan, bed.cluster, o.fault_window);
  if (o.hard_partition) schedule_hard_partition(plan, bed.cluster, o.seed);

  sim::FaultPlan::Campaign campaign;
  campaign.start = sim::milliseconds(1.0);
  campaign.end = o.fault_window;
  campaign.outages = o.outages;
  plan.randomize(campaign);

  // One CLIC port per message keeps delivery accounting per-message: a
  // second arrival on a port whose receiver already completed is a
  // duplicate and shows up through poll().
  std::vector<MessageState> states(static_cast<std::size_t>(o.messages));
  std::vector<net::Buffer> payloads;
  payloads.reserve(states.size());
  for (int m = 0; m < o.messages; ++m) {
    payloads.push_back(net::Buffer::pattern(
        o.bytes, o.seed ^ (static_cast<std::uint64_t>(m) * 0x9e3779b9u)));
    bed.module(chaos_dst(m, o.nodes)).bind_port(10 + m);
    bed.module(chaos_src(m, o.nodes)).bind_port(10 + m);
  }

  struct Run {
    static sim::Task tx(clic::ClicModule& mod, int dst, int port,
                        net::Buffer data, MessageState* st) {
      auto status = co_await mod.send(port, dst, port, std::move(data),
                                      clic::SendMode::kConfirmed);
      st->resolved = true;
      st->ok = status.ok;
    }
    static sim::Task rx(clic::ClicModule& mod, int port, net::Buffer expect,
                        MessageState* st) {
      clic::Message got = co_await mod.recv(port);
      if (got.data.size() == expect.size() &&
          got.data.content_equals(expect)) {
        ++st->delivered;
      } else {
        st->corrupt = true;
      }
    }
  };

  for (int m = 0; m < o.messages; ++m) {
    // Three of four messages stagger across the fault window — some hit a
    // healthy cluster, some start mid-outage, some straddle a heal. Every
    // fourth goes out after the window closes, revisiting channels that
    // gave up during the storm: those must resynchronize (kReset) and
    // deliver.
    const bool late = m >= (3 * o.messages) / 4;
    const sim::SimTime start =
        late ? o.fault_window + sim::milliseconds(10.0) *
                                    static_cast<sim::SimTime>(1 + m)
             : (o.fault_window * static_cast<sim::SimTime>(m)) /
                   static_cast<sim::SimTime>(std::max(2 * o.messages, 1));
    MessageState* st = &states[static_cast<std::size_t>(m)];
    // Each capture gets its own detached payload copy (made here, on the
    // controlling thread): the tx copy travels to the source shard, the rx
    // copy to the destination shard, and the shared pattern block in
    // `payloads` is never touched off-thread.
    bed.sim_of(chaos_src(m, o.nodes))
        .at(start, [&bed, m, st, nodes = o.nodes,
                    data = payloads[static_cast<std::size_t>(m)]
                               .detached()]() mutable {
          Run::tx(bed.module(chaos_src(m, nodes)), chaos_dst(m, nodes),
                  10 + m, std::move(data), st);
        });
    Run::rx(bed.module(chaos_dst(m, o.nodes)), 10 + m,
            payloads[static_cast<std::size_t>(m)].detached(), st);
  }

  bed.run_until(o.deadline);

  // A duplicate that arrived after the receiver completed is still queued
  // on the port.
  for (int m = 0; m < o.messages; ++m) {
    if (bed.module(chaos_dst(m, o.nodes)).poll(10 + m)) {
      ++states[static_cast<std::size_t>(m)].delivered;
    }
  }

  finalize_invariants(r, states);
  r.quiesced = !bed.pending();
  r.timers_clean = timers_clean(bed.cluster);
  r.outages_scheduled = plan.outages_scheduled();
  r.fault_events = plan.faults_fired();
  r.finished_at = bed.now();
  collect_fault_telemetry(r, bed.cluster);
  for (int i = 0; i < bed.cluster.size(); ++i) {
    for (int peer = 0; peer < bed.cluster.size(); ++peer) {
      const clic::Channel* ch = bed.module(i).channel_to(peer);
      if (ch == nullptr) continue;
      r.retransmits += ch->retransmits();
      r.timeouts += ch->timeouts();
      r.gave_up += ch->gave_up();
      r.resets_accepted += ch->resets_accepted();
    }
  }
  if (o.adaptive) {
    r.adaptive = true;
    bool first = true;
    for (int i = 0; i < bed.cluster.size(); ++i) {
      const clic::ClicModule::AdaptiveStats s =
          bed.module(i).adaptive_stats();
      r.rtt_samples += s.rtt_samples;
      r.window_collapses += s.window_collapses;
      r.srtt_max = std::max(r.srtt_max, s.srtt_max);
      r.rttvar_max = std::max(r.rttvar_max, s.rttvar_max);
      if (s.window_max == 0) continue;  // node instantiated no channels
      if (first) {
        r.window_min = s.window_min;
        r.window_max = s.window_max;
        first = false;
      } else {
        r.window_min = std::min(r.window_min, s.window_min);
        r.window_max = std::max(r.window_max, s.window_max);
      }
    }
  }
  return r;
}

ChaosReport run_tcp(const ChaosOptions& o) {
  ChaosReport r;
  r.stack = ChaosStack::kTcp;
  r.seed = o.seed;
  r.messages = o.messages;

  os::ClusterConfig cc;
  cc.nodes = o.nodes;
  cc.shards = o.shards;
  cc.topology = o.topology;
  TcpBed bed(cc);

  sim::FaultPlan plan(bed.sim, o.seed);
  register_cluster_targets(plan, bed.cluster);
  configure_link_faults(bed.cluster, o);
  schedule_clear_link_faults(plan, bed.cluster, o.fault_window);
  if (o.hard_partition) schedule_hard_partition(plan, bed.cluster, o.seed);

  sim::FaultPlan::Campaign campaign;
  campaign.start = sim::milliseconds(1.0);
  campaign.end = o.fault_window;
  campaign.outages = o.outages;
  plan.randomize(campaign);

  std::vector<MessageState> states(static_cast<std::size_t>(o.messages));
  std::vector<net::Buffer> payloads;
  payloads.reserve(states.size());
  for (int m = 0; m < o.messages; ++m) {
    payloads.push_back(net::Buffer::pattern(
        o.bytes, o.seed ^ (static_cast<std::uint64_t>(m) * 0x9e3779b9u)));
    bed.tcp[static_cast<std::size_t>(chaos_dst(m, o.nodes))]->listen(5000 +
                                                                     m);
  }

  struct Run {
    static sim::Task tx(tcpip::TcpStack& stack, int dst, int port,
                        net::Buffer data, MessageState* st) {
      tcpip::TcpSocket& s = stack.create_socket();
      const bool up = co_await s.connect(dst, port);
      if (up) {
        (void)co_await s.send(std::move(data));
      }
      s.close();
      st->resolved = true;
      st->ok = up;
    }
    static sim::Task rx(tcpip::TcpStack& stack, int port, net::Buffer expect,
                        MessageState* st) {
      tcpip::TcpSocket* s = co_await stack.accept(port);
      net::Buffer got = co_await s->recv_exact(expect.size());
      if (got.size() == expect.size() && got.content_equals(expect)) {
        ++st->delivered;
      } else {
        st->corrupt = true;
      }
      s->close();
    }
  };

  for (int m = 0; m < o.messages; ++m) {
    // Same wave shape as the CLIC run: a quarter of the streams open
    // against the freshly healed cluster.
    const bool late = m >= (3 * o.messages) / 4;
    const sim::SimTime start =
        late ? o.fault_window + sim::milliseconds(10.0) *
                                    static_cast<sim::SimTime>(1 + m)
             : (o.fault_window * static_cast<sim::SimTime>(m)) /
                   static_cast<sim::SimTime>(std::max(2 * o.messages, 1));
    MessageState* st = &states[static_cast<std::size_t>(m)];
    // Detached copies per capture, as in the CLIC run.
    bed.sim_of(chaos_src(m, o.nodes))
        .at(start, [&bed, m, st, nodes = o.nodes,
                    data = payloads[static_cast<std::size_t>(m)]
                               .detached()]() mutable {
          Run::tx(*bed.tcp[static_cast<std::size_t>(chaos_src(m, nodes))],
                  chaos_dst(m, nodes), 5000 + m, std::move(data), st);
        });
    Run::rx(*bed.tcp[static_cast<std::size_t>(chaos_dst(m, o.nodes))],
            5000 + m, payloads[static_cast<std::size_t>(m)].detached(), st);
  }

  bed.run_until(o.deadline);

  finalize_invariants(r, states);
  r.quiesced = !bed.pending();
  r.timers_clean = timers_clean(bed.cluster);
  r.outages_scheduled = plan.outages_scheduled();
  r.fault_events = plan.faults_fired();
  r.finished_at = bed.now();
  collect_fault_telemetry(r, bed.cluster);
  return r;
}

}  // namespace

void register_cluster_targets(sim::FaultPlan& plan, os::Cluster& cluster) {
  // Whether a carrier needs one part or two depends only on whether the
  // cable crosses shards — a leaf-local link whose two ends share a worker
  // shard flips entirely on that shard's simulator.
  auto add_carrier = [&plan](net::Link* link) {
    if (!link->crosses_shards()) {
      std::vector<sim::FaultPlan::Part> part(1);
      part[0].sim = &link->end_sim(0);
      part[0].fail = [link] { link->set_carrier_up(false); };
      part[0].restore = [link] { link->set_carrier_up(true); };
      plan.add_target("carrier " + link->name(), std::move(part));
    } else {
      // Cross-shard link: each carrier half flips on the shard that owns
      // that sending end (switch side is the primary part, so telemetry
      // and logging match the single-shard target exactly).
      std::vector<sim::FaultPlan::Part> parts(2);
      parts[0].sim = &link->end_sim(1);
      parts[0].fail = [link] { link->set_carrier_up_from(1, false); };
      parts[0].restore = [link] { link->set_carrier_up_from(1, true); };
      parts[1].sim = &link->end_sim(0);
      parts[1].fail = [link] { link->set_carrier_up_from(0, false); };
      parts[1].restore = [link] { link->set_carrier_up_from(0, true); };
      plan.add_target("carrier " + link->name(), std::move(parts));
    }
  };
  for (int i = 0; i < cluster.size(); ++i) {
    for (int j = 0; j < cluster.config().nics_per_node; ++j) {
      add_carrier(&cluster.link(i, j));
      hw::Nic* nic = &cluster.node(i).nic(j);
      std::vector<sim::FaultPlan::Part> stall(1);
      stall[0].sim = &cluster.sim_of_node(i);
      stall[0].fail = [nic] { nic->set_stalled(true); };
      stall[0].restore = [nic] { nic->set_stalled(false); };
      plan.add_target(
          "nic-stall n" + std::to_string(i) + "." + std::to_string(j),
          std::move(stall));
    }
  }
  // Inter-switch trunks: a spine uplink dying mid-collective is the
  // cross-tier outage the fabric chaos rows exercise.
  for (int t = 0; t < cluster.trunk_count(); ++t) {
    add_carrier(&cluster.trunk_link(t));
  }
  for (int s = 0; s < cluster.switch_count(); ++s) {
    net::Switch* sw = &cluster.switch_at(s);
    sim::Simulator* owner = &cluster.sim_of_switch(s);
    // The star keeps its historical bare "swport <p>" names; multi-switch
    // fabrics qualify them with the stable plan name.
    const std::string prefix =
        cluster.switch_count() == 1
            ? std::string("swport ")
            : "swport " + cluster.topology().switch_name(s) + ".";
    for (int p = 0; p < sw->ports(); ++p) {
      std::vector<sim::FaultPlan::Part> part(1);
      part[0].sim = owner;
      part[0].fail = [sw, p] { sw->set_port_up(p, false); };
      part[0].restore = [sw, p] { sw->set_port_up(p, true); };
      plan.add_target(prefix + std::to_string(p), std::move(part));
    }
  }
}

bool ChaosReport::liveness_ok() const {
  return resolved == messages && invariant_violations == 0 && quiesced &&
         timers_clean;
}

std::string ChaosReport::summary() const {
  std::ostringstream os;
  os << "chaos stack=" << (stack == ChaosStack::kClic ? "clic" : "tcp")
     << " seed=" << seed << " msgs=" << messages << " resolved=" << resolved
     << " ok=" << succeeded << " failed=" << failed
     << " delivered=" << delivered << " violations=" << invariant_violations
     << " quiesced=" << (quiesced ? 1 : 0)
     << " timers_clean=" << (timers_clean ? 1 : 0)
     << " outages=" << outages_scheduled << " fault_events=" << fault_events
     << " drops=" << link_drops << " bursts=" << link_burst_drops
     << " dups=" << link_duplicates << " delayed=" << link_delayed
     << " carrier=" << carrier_drops << " port_down=" << switch_port_drops
     << " tail=" << switch_tail_drops << " stall=" << nic_stall_drops
     << " retx=" << retransmits << " timeouts=" << timeouts
     << " gave_up=" << gave_up << " resets=" << resets_accepted;
  if (adaptive) {
    // Appended only for adaptive campaigns: the non-adaptive digest stays
    // byte-identical to the fixed-clock harness.
    os << " adaptive=1 rtt_samples=" << rtt_samples
       << " collapses=" << window_collapses << " srtt_ns=" << srtt_max
       << " rttvar_ns=" << rttvar_max << " win=" << window_min << ".."
       << window_max;
  }
  return os.str();
}

ChaosReport run_chaos_campaign(const ChaosOptions& options) {
  ChaosOptions o = options;
  o.nodes = std::max(o.nodes, 2);
  o.messages = std::clamp(o.messages, 1, 200);
  return o.stack == ChaosStack::kClic ? run_clic(o) : run_tcp(o);
}

}  // namespace clicsim::apps
