#include "apps/jitter_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace clicsim::apps {

JitterBuffer::JitterBuffer(sim::Simulator& sim, int sig_digits)
    : sim_(&sim), latency_(sig_digits) {}

void JitterBuffer::expect_frame(std::uint32_t frame, int fragments,
                                sim::SimTime generated, sim::SimTime deadline) {
  if (frame != frames_.size()) {
    throw std::logic_error("JitterBuffer: frames must be registered densely");
  }
  if (fragments < 1 || deadline <= generated) {
    throw std::invalid_argument("JitterBuffer: bad frame geometry");
  }
  FrameState fs;
  fs.generated = generated;
  fs.fragments = fragments;
  fs.have.assign(static_cast<std::size_t>(fragments), false);
  frames_.push_back(std::move(fs));
  ++expected_;
  sim_->at(deadline, [this, frame] { playout(frame); });
}

JitterBuffer::Fragment JitterBuffer::on_fragment(std::uint32_t frame,
                                                 std::uint32_t index) {
  FrameState& fs = frames_.at(frame);
  switch (fs.state) {
    case State::kExpired:
      ++late_frags_;
      return Fragment::kLate;
    case State::kBuffered:
    case State::kPlayed:
      ++dups_;
      return Fragment::kDuplicate;
    case State::kPending:
      break;
  }
  if (fs.have.at(index)) {
    ++dups_;
    return Fragment::kDuplicate;
  }
  fs.have[index] = true;
  if (++fs.received < fs.fragments) return Fragment::kAccepted;
  fs.state = State::kBuffered;
  fs.have.clear();
  max_depth_ = std::max(max_depth_, ++depth_);
  latency_.add(sim_->now() - fs.generated);
  return Fragment::kCompleted;
}

void JitterBuffer::playout(std::uint32_t frame) {
  FrameState& fs = frames_.at(frame);
  if (fs.state == State::kBuffered) {
    fs.state = State::kPlayed;
    --depth_;
    ++on_time_;
  } else {
    // Still incomplete at the deadline: expire it and discard the partial
    // reassembly; any fragment that arrives later is dropped as late.
    fs.state = State::kExpired;
    fs.have.clear();
    ++misses_;
  }
}

}  // namespace clicsim::apps
