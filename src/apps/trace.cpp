#include "apps/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "clic/header.hpp"
#include "gamma/gamma.hpp"
#include "hw/nic.hpp"
#include "tcpip/ip.hpp"
#include "tcpip/tcp.hpp"
#include "tcpip/udp.hpp"
#include "via/via.hpp"

namespace clicsim::apps {

namespace {

std::string clic_flags(std::uint8_t f) {
  std::string s;
  if (f & clic::flags::kFirstFragment) s += 'F';
  if (f & clic::flags::kLastFragment) s += 'L';
  if (f & clic::flags::kAckRequested) s += 'C';
  if (f & clic::flags::kPureAck) s += 'A';
  return s.empty() ? "-" : s;
}

const char* clic_type(clic::PacketType t) {
  switch (t) {
    case clic::PacketType::kUser:
      return "user";
    case clic::PacketType::kMpi:
      return "mpi";
    case clic::PacketType::kInternal:
      return "internal";
    case clic::PacketType::kKernelFn:
      return "kfn";
    case clic::PacketType::kRemoteWrite:
      return "rwrite";
    case clic::PacketType::kBroadcast:
      return "bcast";
  }
  return "?";
}

std::string tcp_flags(std::uint8_t f) {
  std::string s;
  if (f & tcpip::tcpflags::kSyn) s += 'S';
  if (f & tcpip::tcpflags::kFin) s += 'F';
  if (f & tcpip::tcpflags::kPsh) s += 'P';
  if (f & tcpip::tcpflags::kAck) s += '.';
  return s.empty() ? "-" : s;
}

}  // namespace

std::string describe(const net::Frame& frame) {
  std::ostringstream os;
  os << frame.src.str() << " > " << frame.dst.str() << ' ';

  if (const auto* wire = frame.header.get<clic::WireHeader>()) {
    const auto& h = wire->clic;
    os << "CLIC " << clic_type(h.type) << ' ' << int{h.src_port} << '>'
       << int{h.dst_port} << " seq " << h.seq << " ack " << h.ack
       << " flags " << clic_flags(h.flags);
    if (!wire->upper.empty()) {
      os << " +upper(" << wire->upper.wire_bytes() << "B)";
    }
  } else if (const auto* ip = frame.header.get<tcpip::Ipv4Header>()) {
    os << "IP ";
    if (const auto* tcp = ip->l4.get<tcpip::TcpHeader>()) {
      os << "TCP " << tcp->src_port << '>' << tcp->dst_port << " seq "
         << tcp->seq << " ack " << tcp->ack << " win " << tcp->window
         << " flags " << tcp_flags(tcp->flags);
    } else if (const auto* udp = ip->l4.get<tcpip::UdpHeader>()) {
      os << "UDP " << udp->src_port << '>' << udp->dst_port << " len "
         << udp->length;
    } else {
      os << "proto " << int{ip->protocol};
    }
    if (ip->frag_offset != 0 || ip->more_fragments) {
      os << " frag off " << ip->frag_offset
         << (ip->more_fragments ? "+" : "");
    }
  } else if (const auto* g = frame.header.get<gamma::GammaHeader>()) {
    os << "GAMMA port " << int{g->port} << " seq " << g->seq
       << ((g->flags & 0x4) ? " ACK" : "");
  } else if (const auto* v = frame.header.get<via::ViaHeader>()) {
    os << "VIA vi " << v->vi_id << ((v->flags & 0x4) ? " RDMA" : "");
  } else if (const auto* nf = frame.header.get<hw::NicFragHeader>()) {
    os << "NICFRAG id " << nf->id << ' ' << nf->index << '/' << nf->count;
  } else {
    os << "ethertype 0x" << std::hex << frame.ethertype << std::dec;
  }

  os << " (" << frame.payload.size() << "B payload, "
     << frame.frame_bytes() << "B frame)";
  if (!frame.fcs_ok) os << " BAD-FCS";
  return os.str();
}

void PacketTrace::tap_node_rx(os::Cluster& cluster, int node, int nic) {
  auto tap = std::make_unique<net::Tap>(
      cluster.node(node).sim(),
      "node" + std::to_string(node) + ".rx");
  tap->insert(cluster.link(node, nic), 0);
  points_.push_back(Point{tap->name(), std::move(tap)});
}

void PacketTrace::tap_node_tx(os::Cluster& cluster, int node, int nic) {
  auto tap = std::make_unique<net::Tap>(
      cluster.node(node).sim(),
      "node" + std::to_string(node) + ".tx");
  tap->insert(cluster.link(node, nic), 1);
  points_.push_back(Point{tap->name(), std::move(tap)});
}

void PacketTrace::tap_all(os::Cluster& cluster) {
  for (int i = 0; i < cluster.size(); ++i) {
    tap_node_rx(cluster, i);
    tap_node_tx(cluster, i);
  }
}

void PacketTrace::dump(std::ostream& os) const {
  struct Line {
    sim::SimTime t;
    const std::string* label;
    const net::Frame* frame;
  };
  std::vector<Line> lines;
  for (const auto& p : points_) {
    for (const auto& r : p.tap->records()) {
      lines.push_back(Line{r.time, &p.label, &r.frame});
    }
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.t < b.t; });
  for (const auto& l : lines) {
    os << std::setw(12) << sim::to_us(l.t) << "us " << std::setw(10)
       << *l.label << "  " << describe(*l.frame) << '\n';
  }
}

std::uint64_t PacketTrace::frames_captured() const {
  std::uint64_t n = 0;
  for (const auto& p : points_) n += p.tap->frames_seen();
  return n;
}

void PacketTrace::clear() {
  for (auto& p : points_) p.tap->clear();
}

}  // namespace clicsim::apps
