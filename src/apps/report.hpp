// Cluster-wide statistics reporting: one formatted snapshot of every
// node's CPU/bus utilization and NIC counters, plus per-channel CLIC
// protocol statistics — the /proc-style introspection an operator of the
// real system would use.
#pragma once

#include <iosfwd>

#include "clic/module.hpp"
#include "os/cluster.hpp"

namespace clicsim::apps {

// Hardware-level snapshot (any protocol stack).
void report_cluster(std::ostream& os, os::Cluster& cluster);

// CLIC protocol snapshot for one module (ports, channels, counters,
// degradation telemetry: timeouts / backoff / gave-up / resets).
void report_clic(std::ostream& os, clic::ClicModule& module);

// Fault telemetry snapshot (any protocol stack): per-link injector and
// carrier counters, switch tail/port-down drops, NIC stall drops.
void report_faults(std::ostream& os, os::Cluster& cluster);

// Adaptive-mode degradation telemetry for one module (DESIGN.md §4k):
// final srtt/rttvar, window excursion, and timeout-driven window
// collapses — the "why did the tail move" companion to report_faults.
// Prints a single disabled marker when Config::adaptive is off.
void report_adaptive(std::ostream& os, clic::ClicModule& module);

}  // namespace clicsim::apps
