// Cluster-wide statistics reporting: one formatted snapshot of every
// node's CPU/bus utilization and NIC counters, plus per-channel CLIC
// protocol statistics — the /proc-style introspection an operator of the
// real system would use.
#pragma once

#include <iosfwd>

#include "clic/module.hpp"
#include "os/cluster.hpp"

namespace clicsim::apps {

// Hardware-level snapshot (any protocol stack).
void report_cluster(std::ostream& os, os::Cluster& cluster);

// CLIC protocol snapshot for one module (ports, channels, counters).
void report_clic(std::ostream& os, clic::ClicModule& module);

}  // namespace clicsim::apps
