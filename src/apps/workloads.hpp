// Measurement workloads reproducing the paper's benchmarks.
//
// The figure curves are single-message-outstanding ("NetPIPE-style")
// bandwidths: a warmed-up ping-pong of `size`-byte messages; bandwidth is
// size / (round-trip / 2). Streaming drivers (windowed, many messages in
// flight) feed the CPU-utilization and interrupt-rate studies.
//
// Every driver builds a fresh simulated cluster from a Scenario so sweep
// points are independent and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/jitter_buffer.hpp"
#include "apps/testbed.hpp"
#include "sim/stats.hpp"

namespace clicsim::apps {

// The paper's CLIC retransmits on a fixed RTO clock, forever; the figure
// reproductions pin that schedule exactly (sender-CPU saturation during
// large transfers can stall ack processing past the RTO, so the clock is
// part of the measured curves). The hardened bounded-failure policy —
// geometric backoff, retry budget, reset resync (DESIGN.md §4f) — stays
// the library default and is what the chaos campaigns exercise.
[[nodiscard]] inline clic::Config paper_clic_config() {
  clic::Config c;
  c.rto_backoff = 1.0;         // fixed retransmission clock
  c.max_retries = 1 << 30;     // never give up
  return c;
}

// The repaired stack (DESIGN.md §4k): same never-give-up reliability as
// paper_clic_config, but the fixed clock is replaced by the measured-RTT
// estimator and the full window by a slow-start/AIMD congestion window.
// This is the "clic-a" column in bench/traffic_tail --adaptive.
[[nodiscard]] inline clic::Config adaptive_clic_config() {
  clic::Config c = paper_clic_config();
  c.adaptive = true;
  return c;
}

struct Scenario {
  os::ClusterConfig cluster;  // includes the NIC profile
  std::int64_t mtu = 9000;
  clic::Config clic = paper_clic_config();
  tcpip::Config tcp;
  mpi::Config mpi;
  pvm::Config pvm;
  gamma::Config gamma;
  via::Config via;
  int pingpong_reps = 5;
};

[[nodiscard]] double to_mbps(std::int64_t size, sim::SimTime one_way);

// --- One-way times (ping-pong, warmed up) -----------------------------------
[[nodiscard]] sim::SimTime clic_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime tcp_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime mpi_clic_one_way(const Scenario& s,
                                            std::int64_t size);
[[nodiscard]] sim::SimTime mpi_tcp_one_way(const Scenario& s,
                                           std::int64_t size);
[[nodiscard]] sim::SimTime pvm_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime gamma_one_way(const Scenario& s,
                                         std::int64_t size);
[[nodiscard]] sim::SimTime via_one_way(const Scenario& s, std::int64_t size);

// --- Streaming (windowed) ------------------------------------------------------
struct StreamStats {
  std::int64_t bytes = 0;
  sim::SimTime elapsed = 0;
  double mbps = 0.0;
  double tx_cpu = 0.0;  // sender CPU utilization
  double rx_cpu = 0.0;  // receiver CPU utilization
  std::uint64_t rx_interrupts = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_ring_drops = 0;
};

[[nodiscard]] StreamStats clic_stream(const Scenario& s,
                                      std::int64_t message_size,
                                      std::int64_t total_bytes);
[[nodiscard]] StreamStats tcp_stream(const Scenario& s,
                                     std::int64_t total_bytes);

// --- Open-loop traffic (tail-latency telemetry; DESIGN.md §4j) --------------
//
// Unlike the closed-loop drivers above, these workloads schedule request
// arrivals from per-client seeded Rng streams *before* the run: a slow
// response never throttles the offered load, so queueing delay shows up in
// the tail instead of silently shrinking the workload (coordinated
// omission). Latency is measured from the scheduled arrival to the
// response (RPC) or frame completion (streaming), and recorded in
// HdrHistograms merged in client/stream index order — results are
// byte-identical at any sweep -j and any --shards.

struct ArrivalSpec {
  enum class Process {
    kPoisson,  // memoryless arrivals at rate_per_s
    kBursty,   // Poisson at rate_per_s during exponential ON periods,
               // silent during exponential OFF periods
    kIncast,   // every client fires in lockstep once per incast_period
  };
  Process process = Process::kPoisson;
  double rate_per_s = 1000.0;  // per-client rate while eligible
  double on_mean_s = 0.002;    // kBursty: mean ON duration
  double off_mean_s = 0.004;   // kBursty: mean OFF duration
  sim::SimTime incast_period = sim::milliseconds(1.0);
  sim::SimTime start = sim::microseconds(100.0);  // first eligible instant
};

// The absolute, strictly increasing arrival times of `client`'s `count`
// requests: a pure function of (spec, seed, client), computable on any
// shard without coordination.
[[nodiscard]] std::vector<sim::SimTime> arrival_times(const ArrivalSpec& spec,
                                                      int count,
                                                      std::uint64_t seed,
                                                      int client);

struct RpcConfig {
  int client_nodes = 4;       // nodes 1..client_nodes; node 0 is the server
  int clients_per_node = 8;   // logical clients multiplexed per node
  int requests_per_client = 25;
  std::int64_t request_bytes = 128;    // >= 16 (wire header)
  std::int64_t response_bytes = 1024;  // >= 16 (wire header)
  ArrivalSpec arrivals;
  std::uint64_t seed = 1;
  int sig_digits = 3;  // latency histogram precision
  // Nonzero: a seeded FaultPlan burst-loss campaign (random carrier/port/
  // DMA outages, all healed by 10 ms) runs under the workload.
  std::uint64_t fault_seed = 0;
};

struct RpcResult {
  sim::HdrHistogram latency{3};  // ns, scheduled arrival -> response
  std::uint64_t requests = 0;    // scheduled (open-loop offered load)
  std::uint64_t responses = 0;   // completed request/response pairs
  std::uint64_t in_flight = 0;   // never answered by quiesce (== requests
                                 // - responses; 0 under paper_clic_config)
  sim::SimTime finished_at = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;  // FNV over every (client, seq, latency) row
};

[[nodiscard]] RpcResult rpc_clic(const Scenario& s, const RpcConfig& cfg);
[[nodiscard]] RpcResult rpc_tcp(const Scenario& s, const RpcConfig& cfg);

struct StreamingConfig {
  int streams = 4;  // one sender node per stream; node 0 receives all
  int frames_per_stream = 48;
  std::int64_t frame_bytes = 24000;
  std::int64_t fragment_bytes = 1200;  // wire size per fragment, > 16
  sim::SimTime cadence = sim::milliseconds(5.0);
  sim::SimTime deadline = sim::milliseconds(4.0);  // playout budget per frame
  sim::SimTime start = sim::microseconds(100.0);
  std::uint64_t seed = 1;  // per-stream phase jitter
  int sig_digits = 3;
  std::uint64_t fault_seed = 0;  // as RpcConfig::fault_seed
};

struct StreamingResult {
  sim::HdrHistogram latency{3};  // ns, frame generated -> reassembled
  std::uint64_t frames = 0;      // expected across all streams
  std::uint64_t on_time = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t late_fragments = 0;
  std::uint64_t duplicate_fragments = 0;
  std::uint64_t in_flight = 0;  // pending at quiesce (0: every deadline fired)
  int max_depth = 0;            // jitter-buffer high-water mark (any stream)
  sim::SimTime finished_at = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

[[nodiscard]] StreamingResult streaming_clic(const Scenario& s,
                                             const StreamingConfig& cfg);
[[nodiscard]] StreamingResult streaming_tcp(const Scenario& s,
                                            const StreamingConfig& cfg);

// --- Sweep helpers ---------------------------------------------------------------
// Log-spaced sizes from `lo` to `hi` (inclusive-ish), `per_decade` points.
[[nodiscard]] std::vector<std::int64_t> sweep_sizes(
    std::int64_t lo = 16, std::int64_t hi = 4 * 1024 * 1024,
    int per_decade = 4);

// Builds a bandwidth-vs-size series from a one-way-time function.
[[nodiscard]] sim::Series bandwidth_series(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way);

}  // namespace clicsim::apps
