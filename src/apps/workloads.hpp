// Measurement workloads reproducing the paper's benchmarks.
//
// The figure curves are single-message-outstanding ("NetPIPE-style")
// bandwidths: a warmed-up ping-pong of `size`-byte messages; bandwidth is
// size / (round-trip / 2). Streaming drivers (windowed, many messages in
// flight) feed the CPU-utilization and interrupt-rate studies.
//
// Every driver builds a fresh simulated cluster from a Scenario so sweep
// points are independent and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/testbed.hpp"
#include "sim/stats.hpp"

namespace clicsim::apps {

// The paper's CLIC retransmits on a fixed RTO clock, forever; the figure
// reproductions pin that schedule exactly (sender-CPU saturation during
// large transfers can stall ack processing past the RTO, so the clock is
// part of the measured curves). The hardened bounded-failure policy —
// geometric backoff, retry budget, reset resync (DESIGN.md §4f) — stays
// the library default and is what the chaos campaigns exercise.
[[nodiscard]] inline clic::Config paper_clic_config() {
  clic::Config c;
  c.rto_backoff = 1.0;         // fixed retransmission clock
  c.max_retries = 1 << 30;     // never give up
  return c;
}

struct Scenario {
  os::ClusterConfig cluster;  // includes the NIC profile
  std::int64_t mtu = 9000;
  clic::Config clic = paper_clic_config();
  tcpip::Config tcp;
  mpi::Config mpi;
  pvm::Config pvm;
  gamma::Config gamma;
  via::Config via;
  int pingpong_reps = 5;
};

[[nodiscard]] double to_mbps(std::int64_t size, sim::SimTime one_way);

// --- One-way times (ping-pong, warmed up) -----------------------------------
[[nodiscard]] sim::SimTime clic_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime tcp_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime mpi_clic_one_way(const Scenario& s,
                                            std::int64_t size);
[[nodiscard]] sim::SimTime mpi_tcp_one_way(const Scenario& s,
                                           std::int64_t size);
[[nodiscard]] sim::SimTime pvm_one_way(const Scenario& s, std::int64_t size);
[[nodiscard]] sim::SimTime gamma_one_way(const Scenario& s,
                                         std::int64_t size);
[[nodiscard]] sim::SimTime via_one_way(const Scenario& s, std::int64_t size);

// --- Streaming (windowed) ------------------------------------------------------
struct StreamStats {
  std::int64_t bytes = 0;
  sim::SimTime elapsed = 0;
  double mbps = 0.0;
  double tx_cpu = 0.0;  // sender CPU utilization
  double rx_cpu = 0.0;  // receiver CPU utilization
  std::uint64_t rx_interrupts = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_ring_drops = 0;
};

[[nodiscard]] StreamStats clic_stream(const Scenario& s,
                                      std::int64_t message_size,
                                      std::int64_t total_bytes);
[[nodiscard]] StreamStats tcp_stream(const Scenario& s,
                                     std::int64_t total_bytes);

// --- Sweep helpers ---------------------------------------------------------------
// Log-spaced sizes from `lo` to `hi` (inclusive-ish), `per_decade` points.
[[nodiscard]] std::vector<std::int64_t> sweep_sizes(
    std::int64_t lo = 16, std::int64_t hi = 4 * 1024 * 1024,
    int per_decade = 4);

// Builds a bandwidth-vs-size series from a one-way-time function.
[[nodiscard]] sim::Series bandwidth_series(
    const std::string& name, const std::vector<std::int64_t>& sizes,
    const std::function<sim::SimTime(std::int64_t)>& one_way);

}  // namespace clicsim::apps
